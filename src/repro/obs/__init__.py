"""``repro.obs`` — structured telemetry for training, eval, and autograd.

One import gives every layer the same four verbs:

* :func:`trace` / :func:`record_span` — wall-clock attribution (span tree);
* :func:`count` / :func:`gauge_set` / :func:`observe` /
  :func:`observe_hdr` — metrics registry (counters, gauges, reservoir
  histograms, bounded-error HDR latency histograms);
* :func:`event` / :func:`trace_event` — free-form JSONL events, the
  latter stamped with the current request's
  :class:`~repro.obs.trace_context.TraceContext`;
* :func:`get_logger` — the shared structured stderr logger.

Observability v2 (PR 7) adds the request-scoped layer: traces
(:func:`new_trace` / :func:`bind_trace` / :func:`current_trace`), the
Chrome-trace exporter (:mod:`repro.obs.export`), SLO evaluation
(:mod:`repro.obs.slo`), and the sampling profiler
(:mod:`repro.obs.profile`).

All of them are **strict no-ops while no run is active**: a single module
global load and ``None`` check, no allocation, no branching on config.
The instrumented hot paths (sampler, manifold projection, autograd
backward) therefore stay within the 2% disabled-overhead budget asserted
in ``tests/test_obs.py``.

Lifecycle::

    run = obs.start_run(run_dir="runs", config={"model": "LogiRec++"})
    with obs.trace("fit", model="LogiRec++"):
        ...
        obs.count("sampler/resampled", 17)
    obs.finish_run(final_metrics=result.means)   # writes manifest.json

NaN/inf gradient detection in the autograd engine is gated separately
(``nan_checks=True`` on :func:`start_run`, surfaced as ``--trace`` on the
CLI) because it inspects every gradient buffer and is priced accordingly.
"""

from __future__ import annotations

from repro.obs import run as _run
from repro.obs.export import (build_chrome_trace, export_chrome_trace,
                              validate_chrome_trace)
from repro.obs.hdr import HdrHistogram, WindowedHdrHistogram
from repro.obs.logger import RateLimiter, get_logger
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry)
from repro.obs.profile import SamplingProfiler
from repro.obs.run import (Run, current_run, disable, finish_run, start_run)
from repro.obs.sink import (JsonlSink, MemorySink, git_sha, read_events,
                            read_manifest)
from repro.obs.summarize import (aggregate_spans, list_runs,
                                 render_span_tree, summarize,
                                 summarize_json, tree_coverage)
from repro.obs.trace_context import (TraceContext, bind_trace,
                                     current_trace, new_trace)
from repro.obs.tracing import NULL_SPAN, Span, Tracer

__all__ = [
    "Counter", "Gauge", "HdrHistogram", "Histogram", "MetricsRegistry",
    "Run", "SamplingProfiler", "Span", "TraceContext", "Tracer",
    "WindowedHdrHistogram", "NULL_SPAN", "JsonlSink", "MemorySink",
    "RateLimiter", "aggregate_spans", "bind_trace", "build_chrome_trace",
    "count", "current_run", "current_trace", "disable", "enabled",
    "event", "export_chrome_trace", "finish_run", "gauge_set",
    "get_logger", "git_sha", "list_runs", "nan_checks_enabled",
    "new_trace", "observe", "observe_hdr", "read_events", "read_manifest",
    "record_span", "render_span_tree", "start_run", "summarize",
    "summarize_json", "trace", "trace_event", "tree_coverage",
    "validate_chrome_trace",
]


# ----------------------------------------------------------------------
# Hot-path helpers.  Each starts with one module-global load + None
# check; that is the entire disabled-mode cost.
# ----------------------------------------------------------------------
def enabled() -> bool:
    """True while a run is active (telemetry is being collected)."""
    return _run._RUN is not None


def nan_checks_enabled() -> bool:
    """True when the autograd engine should scan gradients for NaN/inf."""
    return _run._NAN_CHECKS


def trace(name: str, **meta):
    """Open a span context; the shared no-op span when disabled."""
    r = _run._RUN
    if r is None:
        return NULL_SPAN
    return r.tracer.span(name, **meta)


def record_span(name: str, duration_s: float, count: int = 1, **meta):
    """Record a pre-aggregated span (no-op when disabled)."""
    r = _run._RUN
    if r is not None:
        r.tracer.record(name, duration_s, count=count, **meta)


def count(name: str, n: int = 1) -> None:
    """Increment a counter (no-op when disabled)."""
    r = _run._RUN
    if r is not None:
        r.registry.counter(name).inc(n)


def gauge_set(name: str, value: float) -> None:
    """Set a gauge (no-op when disabled)."""
    r = _run._RUN
    if r is not None:
        r.registry.gauge(name).set(value)


def observe(name: str, value: float) -> None:
    """Observe one histogram value (no-op when disabled)."""
    r = _run._RUN
    if r is not None:
        r.registry.histogram(name).observe(value)


def observe_hdr(name: str, value: float) -> None:
    """Observe into a bounded-error HDR histogram (no-op when disabled)."""
    r = _run._RUN
    if r is not None:
        r.registry.hdr(name).observe(value)


def trace_event(name: str, **fields) -> None:
    """Emit a request-scoped instant event (no-op when disabled).

    Stamped with the current :class:`TraceContext` when one is bound —
    the serving engine uses this for retries, timeouts, breaker
    transitions, fallbacks, and cache hits.
    """
    r = _run._RUN
    if r is not None:
        r.trace_event(name, **fields)


def event(name: str, **fields) -> None:
    """Emit one free-form event (no-op when disabled)."""
    r = _run._RUN
    if r is not None:
        r.event(name, **fields)
