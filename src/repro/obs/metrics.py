"""Metrics primitives: counters, gauges, and histograms.

The registry is deliberately zero-dependency (stdlib only) so every layer
of the library — including :mod:`repro.tensor`, which must not import
anything heavy — can record into it.  All types are plain accumulators;
aggregation and rendering happen at snapshot time.

Every mutation is guarded by a per-metric lock: ``REPRO_BACKEND_THREADS``
spmm workers and the multi-worker serving front-end may record into the
flat registry concurrently, and a torn ``+=`` would silently undercount.
The locks sit only on the *enabled* path — disabled telemetry never
reaches a metric object, so the < 2% disabled-overhead budget is
untouched.

Naming convention: slash-separated paths, ``"sampler/rejection_rounds"``,
``"manifold/lorentz/dist_clamped"``.  The registry is flat; the paths are
only a convention that keeps snapshots greppable and lets the summarizer
group related series.
"""

from __future__ import annotations

import math
import random
import threading
import zlib
from typing import Dict, List, Optional

from repro.obs.hdr import HdrHistogram


class Counter:
    """A monotonically increasing count (events, clamps, retries)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n

    def summary(self) -> int:
        return self.value


class Gauge:
    """A last-write-wins instantaneous value (norms, weights, sizes)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def summary(self) -> Optional[float]:
        return self.value


class Histogram:
    """Streaming distribution with exact moments + reservoir percentiles.

    Count/total/min/max are exact over every observation; percentiles come
    from a fixed-size uniform reservoir (Vitter's algorithm R), so memory
    stays bounded no matter how many batches a 300-epoch run observes.
    The reservoir RNG is seeded from the metric name: two runs observing
    the same sequence report identical percentiles.
    """

    __slots__ = ("name", "reservoir_size", "count", "total", "min", "max",
                 "_samples", "_rng", "_lock")

    def __init__(self, name: str, reservoir_size: int = 1024):
        self.name = name
        self.reservoir_size = int(reservoir_size)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: List[float] = []
        self._rng = random.Random(zlib.crc32(name.encode()))
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            if len(self._samples) < self.reservoir_size:
                self._samples.append(value)
            else:
                j = self._rng.randrange(self.count)
                if j < self.reservoir_size:
                    self._samples[j] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile ``q`` in [0, 100] of the reservoir.

        Pinned edge cases: an empty histogram returns NaN; ``q=0`` and
        ``q=100`` return the *exact* observed min/max (tracked over every
        observation, not just the reservoir); a single observation is
        returned for every ``q``.  Out-of-range ``q`` raises instead of
        extrapolating.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        with self._lock:
            if not self._samples:
                return math.nan
            if q == 0.0:
                return self.min
            if q == 100.0:
                return self.max
            ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        pos = (q / 100.0) * (len(ordered) - 1)
        lo = int(math.floor(pos))
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def summary(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
        }


class MetricsRegistry:
    """Get-or-create store for the four metric types.

    A name is bound to one type for the registry's lifetime; asking for it
    as another type raises — silent type confusion would corrupt the
    snapshot schema run-manifest consumers rely on.  Get-or-create runs
    under a registry lock so two threads racing to create the same metric
    cannot each keep a private copy.
    """

    def __init__(self):
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {cls.__name__}")
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, reservoir_size: int = 1024) -> Histogram:
        if name in self._metrics:
            return self._get(name, Histogram)
        return self._get(name, Histogram, reservoir_size=reservoir_size)

    def hdr(self, name: str, rel_error: float = 0.01,
            min_value: float = 1e-3, max_value: float = 1e7) -> HdrHistogram:
        """Bounded-relative-error latency histogram (see :mod:`repro.obs.hdr`).

        Creation keywords apply on first use only; later calls return the
        existing histogram unchanged, like :meth:`histogram`.
        """
        if name in self._metrics:
            return self._get(name, HdrHistogram)
        return self._get(name, HdrHistogram, rel_error=rel_error,
                         min_value=min_value, max_value=max_value)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-serializable view: ``{kind: {name: summary}}``, sorted."""
        out: Dict[str, Dict[str, object]] = {
            "counters": {}, "gauges": {}, "histograms": {}, "hdr": {}}
        with self._lock:
            items = sorted(self._metrics.items())
        for name, metric in items:
            if isinstance(metric, Counter):
                out["counters"][name] = metric.summary()
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.summary()
            elif isinstance(metric, HdrHistogram):
                out["hdr"][name] = metric.summary()
            else:
                out["histograms"][name] = metric.summary()
        return out
