"""Metrics primitives: counters, gauges, and reservoir histograms.

The registry is deliberately zero-dependency (stdlib only) so every layer
of the library — including :mod:`repro.tensor`, which must not import
anything heavy — can record into it.  All types are plain accumulators;
aggregation and rendering happen at snapshot time.

Naming convention: slash-separated paths, ``"sampler/rejection_rounds"``,
``"manifold/lorentz/dist_clamped"``.  The registry is flat; the paths are
only a convention that keeps snapshots greppable and lets the summarizer
group related series.
"""

from __future__ import annotations

import math
import random
import zlib
from typing import Dict, List, Optional


class Counter:
    """A monotonically increasing count (events, clamps, retries)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def summary(self) -> int:
        return self.value


class Gauge:
    """A last-write-wins instantaneous value (norms, weights, sizes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def summary(self) -> Optional[float]:
        return self.value


class Histogram:
    """Streaming distribution with exact moments + reservoir percentiles.

    Count/total/min/max are exact over every observation; percentiles come
    from a fixed-size uniform reservoir (Vitter's algorithm R), so memory
    stays bounded no matter how many batches a 300-epoch run observes.
    The reservoir RNG is seeded from the metric name: two runs observing
    the same sequence report identical percentiles.
    """

    __slots__ = ("name", "reservoir_size", "count", "total", "min", "max",
                 "_samples", "_rng")

    def __init__(self, name: str, reservoir_size: int = 1024):
        self.name = name
        self.reservoir_size = int(reservoir_size)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: List[float] = []
        self._rng = random.Random(zlib.crc32(name.encode()))

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < self.reservoir_size:
            self._samples.append(value)
        else:
            j = self._rng.randrange(self.count)
            if j < self.reservoir_size:
                self._samples[j] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile ``q`` in [0, 100] of the reservoir."""
        if not self._samples:
            return math.nan
        ordered = sorted(self._samples)
        pos = (q / 100.0) * (len(ordered) - 1)
        lo = int(math.floor(pos))
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def summary(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
        }


class MetricsRegistry:
    """Get-or-create store for the three metric types.

    A name is bound to one type for the registry's lifetime; asking for it
    as another type raises — silent type confusion would corrupt the
    snapshot schema run-manifest consumers rely on.
    """

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, cls, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {cls.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, reservoir_size: int = 1024) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            return self._get(name, Histogram, reservoir_size=reservoir_size)
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-serializable view: ``{kind: {name: summary}}``, sorted."""
        out: Dict[str, Dict[str, object]] = {
            "counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out["counters"][name] = metric.summary()
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.summary()
            else:
                out["histograms"][name] = metric.summary()
        return out
