"""Run lifecycle and the process-global telemetry switch.

One :class:`Run` is active at a time (module global ``_RUN``).  While a
run is active, the fast helpers in :mod:`repro.obs` route counters,
gauges, histograms, spans, and events to the run's registry/tracer/sink;
while no run is active they are single-branch no-ops, which is what keeps
the instrumented hot paths within the < 2% disabled-overhead budget.

A run may be *persistent* (``run_dir`` given: events stream to
``<run_dir>/events.jsonl`` and :meth:`Run.finish` writes
``manifest.json``) or *in-memory* (``run_dir=None``: events collect on
``run.events`` — used by the perf bench and tests).
"""

from __future__ import annotations

import os
import pathlib
import time
from typing import Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.sink import (JsonlSink, MemorySink, git_sha, write_manifest)
from repro.obs.trace_context import current_trace
from repro.obs.tracing import Tracer

_RUN: Optional["Run"] = None
_NAN_CHECKS = False


def _make_run_id() -> str:
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return f"{stamp}-{os.urandom(3).hex()}"


class Run:
    """Registry + tracer + sink for one experiment."""

    def __init__(self, run_dir: Optional[os.PathLike] = None,
                 run_id: Optional[str] = None,
                 config: Optional[Dict[str, object]] = None,
                 keep_spans: bool = True):
        self.run_id = run_id or _make_run_id()
        self.config = dict(config or {})
        self.registry = MetricsRegistry()
        self.dir: Optional[pathlib.Path] = None
        if run_dir is not None:
            self.dir = pathlib.Path(run_dir) / self.run_id
            self.dir.mkdir(parents=True, exist_ok=True)
            self._sink = JsonlSink(self.dir / "events.jsonl")
        else:
            self._sink = MemorySink()
        self.tracer = Tracer(
            on_finish=lambda span: self._sink.write(span.to_event()),
            keep=keep_spans)
        self.started_at = time.strftime("%Y-%m-%dT%H:%M:%S")
        self._t0 = time.perf_counter()
        self.finished = False
        self.manifest: Optional[Dict[str, object]] = None
        self.event("run_start", run_id=self.run_id, config=self.config)

    # ------------------------------------------------------------------
    @property
    def events(self):
        """In-memory event list (MemorySink runs only)."""
        return getattr(self._sink, "events", None)

    def event(self, name: str, **fields) -> None:
        """Write one free-form event to the sink."""
        event: Dict[str, object] = {
            "type": "event", "name": name,
            "t0": round(time.perf_counter() - self._t0, 6)}
        event.update(fields)
        self._sink.write(event)

    def trace_event(self, name: str, **fields) -> None:
        """Write one request-scoped instant event (retry, cache hit, ...).

        Stamped with the current :class:`~repro.obs.trace_context.
        TraceContext` when one is bound, so the trace exporter can place
        it on the owning request's timeline lane.
        """
        event: Dict[str, object] = {
            "type": "trace_event", "name": name,
            "t0": round(time.perf_counter() - self._t0, 6)}
        ctx = current_trace()
        if ctx is not None:
            event["trace"] = ctx.trace_id
            event["span"] = ctx.span_id
        event.update(fields)
        self._sink.write(event)

    def wall_seconds(self) -> float:
        return time.perf_counter() - self._t0

    # ------------------------------------------------------------------
    def finish(self, final_metrics: Optional[Dict[str, object]] = None,
               dataset_stats: Optional[Dict[str, object]] = None,
               extra: Optional[Dict[str, object]] = None
               ) -> Dict[str, object]:
        """Close the sink and write (and return) the manifest."""
        if self.finished:
            return self.manifest or {}
        self.finished = True
        wall = self.wall_seconds()
        self.event("run_end", wall_s=round(wall, 6))
        manifest: Dict[str, object] = {
            "run_id": self.run_id,
            "started_at": self.started_at,
            "wall_s": round(wall, 6),
            "git_sha": git_sha() or "unknown",
            "config": self.config,
            "seed": self.config.get("seed"),
            "dataset_stats": dict(dataset_stats or {}),
            "final_metrics": dict(final_metrics or {}),
            "n_events": self._sink.n_events,
            "metrics": self.registry.snapshot(),
        }
        if extra:
            manifest.update(extra)
        self.manifest = manifest
        if self.dir is not None:
            write_manifest(self.dir / "manifest.json", manifest)
        self._sink.close()
        return manifest


# ----------------------------------------------------------------------
# Module-global switch
# ----------------------------------------------------------------------
def start_run(run_dir: Optional[os.PathLike] = None,
              run_id: Optional[str] = None,
              config: Optional[Dict[str, object]] = None,
              nan_checks: bool = False,
              keep_spans: bool = True) -> Run:
    """Activate telemetry globally and return the new current run.

    Any previously active run is finished first (one run at a time keeps
    the hot-path check a single global load).
    """
    global _RUN, _NAN_CHECKS
    if _RUN is not None:
        _RUN.finish()
    _RUN = Run(run_dir=run_dir, run_id=run_id, config=config,
               keep_spans=keep_spans)
    _NAN_CHECKS = bool(nan_checks)
    return _RUN


def finish_run(**kwargs) -> Optional[Dict[str, object]]:
    """Finish the current run (writing its manifest) and disable telemetry."""
    global _RUN, _NAN_CHECKS
    if _RUN is None:
        return None
    manifest = _RUN.finish(**kwargs)
    _RUN = None
    _NAN_CHECKS = False
    return manifest


def disable() -> None:
    """Turn telemetry off without writing a manifest (test teardown)."""
    global _RUN, _NAN_CHECKS
    if _RUN is not None and not _RUN.finished:
        _RUN._sink.close()
    _RUN = None
    _NAN_CHECKS = False


def current_run() -> Optional[Run]:
    return _RUN
