"""Offline run analysis: span tree + metrics tables from a run directory.

``repro obs summarize <run_dir>`` renders:

* the aggregated span tree — sibling spans with the same name collapse
  into one node (``epoch ×300``) with total duration and the share of the
  parent's wall-clock, so a 300-epoch run reads as five lines, not 1500;
* coverage — how much of the run's wall-clock the root spans attribute
  (the acceptance bar for instrumentation completeness is >= 90%);
* the metrics-registry snapshot and final evaluation metrics from
  ``manifest.json``.

Everything here consumes only the serialized artifacts, never live
objects: what you can summarize is exactly what a crashed or remote run
leaves behind.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Optional

from repro.obs.sink import read_events, read_manifest


class SpanNode:
    """Aggregate of same-named sibling spans in the rendered tree."""

    __slots__ = ("name", "total_s", "n", "children")

    def __init__(self, name: str):
        self.name = name
        self.total_s = 0.0
        self.n = 0
        self.children: List["SpanNode"] = []


def aggregate_spans(events: List[Dict[str, object]]) -> List[SpanNode]:
    """Collapse raw span events into a name-aggregated tree."""
    spans = [e for e in events if e.get("type") == "span"]
    by_parent: Dict[Optional[int], List[dict]] = {}
    for span in spans:
        by_parent.setdefault(span.get("parent"), []).append(span)

    def build(group: List[dict]) -> List[SpanNode]:
        nodes: Dict[str, SpanNode] = {}
        order: List[str] = []
        child_spans: Dict[str, List[dict]] = {}
        for span in group:
            name = str(span["name"])
            node = nodes.get(name)
            if node is None:
                node = nodes[name] = SpanNode(name)
                order.append(name)
                child_spans[name] = []
            node.total_s += float(span.get("dur", 0.0))
            node.n += int(span.get("count", 1))
            child_spans[name].extend(by_parent.get(span["id"], ()))
        for name in order:
            if child_spans[name]:
                nodes[name].children = build(child_spans[name])
        return [nodes[name] for name in order]

    return build(by_parent.get(None, []))


def tree_coverage(roots: List[SpanNode], wall_s: Optional[float]) -> float:
    """Fraction of run wall-clock attributed to root spans (0 when unknown)."""
    if not wall_s or wall_s <= 0:
        return 0.0
    return min(1.0, sum(r.total_s for r in roots) / wall_s)


def _render_node(node: SpanNode, parent_s: Optional[float],
                 prefix: str, is_last: bool, lines: List[str]) -> None:
    connector = "" if prefix == "" and is_last is None else (
        "└─ " if is_last else "├─ ")
    label = node.name if node.n == 1 else f"{node.name} ×{node.n}"
    share = ""
    if parent_s and parent_s > 0:
        share = f"{100.0 * node.total_s / parent_s:5.1f}%"
    lines.append(f"{prefix}{connector}{label:<{max(1, 40 - len(prefix))}}"
                 f"{node.total_s * 1e3:12.1f} ms  {share}")
    child_prefix = prefix if is_last is None else (
        prefix + ("   " if is_last else "│  "))
    for i, child in enumerate(node.children):
        _render_node(child, node.total_s, child_prefix,
                     i == len(node.children) - 1, lines)


def render_span_tree(roots: List[SpanNode],
                     wall_s: Optional[float] = None) -> str:
    lines: List[str] = []
    for root in roots:
        _render_node(root, wall_s, "", None, lines)
    if wall_s:
        coverage = tree_coverage(roots, wall_s)
        lines.append(f"coverage: {100.0 * coverage:.1f}% of "
                     f"{wall_s:.3f}s wall-clock attributed to spans")
    return "\n".join(lines)


def _render_metrics(metrics: Dict[str, Dict[str, object]]) -> List[str]:
    lines: List[str] = []
    counters = metrics.get("counters", {})
    if counters:
        lines.append("counters:")
        for name, value in counters.items():
            lines.append(f"  {name:<44}{value:>14}")
    gauges = metrics.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for name, value in gauges.items():
            shown = f"{value:.6g}" if isinstance(value, float) else value
            lines.append(f"  {name:<44}{shown:>14}")
    histograms = metrics.get("histograms", {})
    if histograms:
        lines.append("histograms:"
                     f"  {'count':>8} {'mean':>12} {'p50':>12}"
                     f" {'p90':>12} {'max':>12}")
        for name, h in histograms.items():
            if not h.get("count"):
                lines.append(f"  {name:<42} {0:>8}")
                continue
            lines.append(
                f"  {name:<42} {h['count']:>8} {h['mean']:>12.5g} "
                f"{h['p50']:>12.5g} {h['p90']:>12.5g} {h['max']:>12.5g}")
    hdr = metrics.get("hdr", {})
    if hdr:
        lines.append("hdr histograms:"
                     f"  {'count':>4} {'mean':>12} {'p50':>12}"
                     f" {'p95':>12} {'p99':>12}")
        for name, h in hdr.items():
            if not h.get("count"):
                lines.append(f"  {name:<42} {0:>8}")
                continue
            lines.append(
                f"  {name:<42} {h['count']:>8} {h['mean']:>12.5g} "
                f"{h['p50']:>12.5g} {h['p95']:>12.5g} {h['p99']:>12.5g}")
    return lines


def summarize(run_dir) -> str:
    """Human-readable summary of one run directory."""
    run_dir = pathlib.Path(run_dir)
    manifest = read_manifest(run_dir)
    events = read_events(run_dir)
    roots = aggregate_spans(events)
    wall_s = manifest.get("wall_s") if manifest else None
    lines: List[str] = [f"run: {run_dir}"]
    if manifest:
        lines.append(
            f"run_id={manifest.get('run_id')} "
            f"started={manifest.get('started_at')} "
            f"wall={manifest.get('wall_s', 0.0):.3f}s "
            f"git={manifest.get('git_sha')}")
        if manifest.get("config"):
            pairs = " ".join(f"{k}={v}" for k, v in
                             sorted(manifest["config"].items()))
            lines.append(f"config: {pairs}")
    else:
        lines.append("(no manifest.json — run did not finish cleanly)")
    lines.append("")
    if roots:
        lines.append("span tree:")
        lines.append(render_span_tree(roots, wall_s))
    else:
        lines.append("(no spans recorded)")
    if manifest:
        metric_lines = _render_metrics(manifest.get("metrics", {}))
        if metric_lines:
            lines.append("")
            lines.extend(metric_lines)
        final = manifest.get("final_metrics") or {}
        if final:
            lines.append("")
            lines.append("final metrics:")
            for name in sorted(final):
                value = final[name]
                shown = f"{value:.4f}" if isinstance(value, float) else value
                lines.append(f"  {name:<30}{shown:>12}")
    return "\n".join(lines)


def _node_to_dict(node: SpanNode) -> Dict[str, object]:
    out: Dict[str, object] = {"name": node.name,
                              "total_s": round(node.total_s, 6),
                              "n": node.n}
    if node.children:
        out["children"] = [_node_to_dict(child) for child in node.children]
    return out


def summarize_json(run_dir) -> Dict[str, object]:
    """Machine-readable summary of one run directory.

    The same artifacts :func:`summarize` renders, as one JSON-safe dict:
    manifest (verbatim), the aggregated span tree, span coverage, and
    the event count — what CI and the SLO gate consume without scraping
    the text rendering.
    """
    run_dir = pathlib.Path(run_dir)
    manifest = read_manifest(run_dir)
    events = read_events(run_dir)
    roots = aggregate_spans(events)
    wall_s = manifest.get("wall_s") if manifest else None
    return {
        "run_dir": str(run_dir),
        "run_id": (manifest or {}).get("run_id"),
        "finished": manifest is not None,
        "n_events": len(events),
        "coverage": round(tree_coverage(roots, wall_s), 6),
        "spans": [_node_to_dict(root) for root in roots],
        "manifest": manifest,
    }


def list_runs(base_dir) -> List[str]:
    """Formatted one-line descriptions of every run under ``base_dir``."""
    base = pathlib.Path(base_dir)
    if not base.exists():
        return []
    lines = []
    for run_dir in sorted(p for p in base.iterdir() if p.is_dir()):
        manifest = read_manifest(run_dir)
        if manifest is None:
            lines.append(f"{run_dir.name:<28} (unfinished)")
            continue
        config = manifest.get("config", {})
        what = " ".join(str(config[k]) for k in ("command", "model",
                                                 "dataset") if k in config)
        lines.append(f"{run_dir.name:<28} wall={manifest.get('wall_s', 0):8.2f}s"
                     f"  events={manifest.get('n_events', 0):<6} {what}")
    return lines
