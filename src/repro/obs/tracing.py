"""Span tracer: nested wall-clock attribution with per-span metadata.

Two ways to produce a span:

* ``with tracer.span("epoch", epoch=3) as sp:`` — a live context manager
  timed with :func:`time.perf_counter`; nesting follows the runtime call
  stack (the innermost open span is the parent of the next one).
* ``tracer.record("backward", duration_s, count=n_batches)`` — a
  pre-aggregated span for hot loops where opening a context manager per
  batch would cost more than the work being measured.  It is parented to
  the currently open span, so per-phase accumulators flushed once per
  epoch still land in the right place in the tree.

Finished spans flow to an ``on_finish`` callback (the run's JSONL sink)
and are also kept on ``tracer.finished`` for in-memory consumers such as
the perf bench.  When telemetry is disabled, callers get
:data:`NULL_SPAN` from :func:`repro.obs.trace` and never touch a tracer.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from repro.obs.trace_context import current_trace


class Span:
    """One finished (or open) region of wall-clock time."""

    __slots__ = ("name", "span_id", "parent_id", "t_start", "duration_s",
                 "count", "meta")

    def __init__(self, name: str, span_id: int, parent_id: Optional[int],
                 t_start: float, duration_s: float = 0.0, count: int = 1,
                 meta: Optional[Dict[str, object]] = None):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.t_start = t_start          # seconds since tracer epoch
        self.duration_s = duration_s
        self.count = count              # >1 for pre-aggregated spans
        self.meta = meta or {}

    def annotate(self, **meta) -> "Span":
        """Attach metadata after entry (e.g. the epoch's final loss)."""
        self.meta.update(meta)
        return self

    def to_event(self) -> Dict[str, object]:
        event: Dict[str, object] = {
            "type": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "t0": round(self.t_start, 6),
            "dur": round(self.duration_s, 6),
        }
        if self.count != 1:
            event["count"] = self.count
        if self.meta:
            event["meta"] = self.meta
        return event


class _NullSpan:
    """Shared do-nothing span handed out when telemetry is disabled.

    Supports the same surface (context manager + :meth:`annotate`) so
    instrumented code needs no ``if enabled`` branches around ``with``
    blocks.  A single module-level instance keeps the disabled path
    allocation-free.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def annotate(self, **meta) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager binding one live span to a tracer's stack."""

    __slots__ = ("_tracer", "_span", "_t0")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._stack.append(self._span)
        self._t0 = time.perf_counter()
        return self._span

    def __exit__(self, *exc) -> bool:
        self._span.duration_s = time.perf_counter() - self._t0
        stack = self._tracer._stack
        # The span may not be on top if a nested span leaked (exception
        # paths); remove by identity to keep the stack consistent.
        if stack and stack[-1] is self._span:
            stack.pop()
        else:  # pragma: no cover - defensive
            self._tracer._stack = [s for s in stack if s is not self._span]
        self._tracer._finish(self._span)
        return False


class Tracer:
    """Builds the span tree; owns ids, the open-span stack, and timing."""

    def __init__(self, on_finish: Optional[Callable[[Span], None]] = None,
                 keep: bool = True):
        self._epoch = time.perf_counter()
        self._next_id = 0
        self._stack: List[Span] = []
        self._on_finish = on_finish
        self.keep = keep
        self.finished: List[Span] = []

    # ------------------------------------------------------------------
    def _new_span(self, name: str, meta: Dict[str, object]) -> Span:
        self._next_id += 1
        parent = self._stack[-1].span_id if self._stack else None
        ctx = current_trace()
        if ctx is not None:
            # Stamp request identity so the exporter can lane spans per
            # trace; explicit trace=... meta (batched paths) wins.
            meta.setdefault("trace", ctx.trace_id)
        return Span(name, self._next_id, parent,
                    t_start=time.perf_counter() - self._epoch, meta=meta)

    def _finish(self, span: Span) -> None:
        if self.keep:
            self.finished.append(span)
        if self._on_finish is not None:
            self._on_finish(span)

    # ------------------------------------------------------------------
    def span(self, name: str, **meta) -> _SpanContext:
        """Open a live span: ``with tracer.span("fit") as sp: ...``."""
        return _SpanContext(self, self._new_span(name, meta))

    def record(self, name: str, duration_s: float, count: int = 1,
               **meta) -> Span:
        """Record a pre-aggregated span under the currently open span."""
        span = self._new_span(name, meta)
        span.t_start = max(0.0, span.t_start - duration_s)
        span.duration_s = float(duration_s)
        span.count = int(count)
        self._finish(span)
        return span

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None
