"""Declarative service-level objectives and their evaluation.

An SLO here is a small dict — name, kind, objective — declared in JSON
(or the built-in defaults) and evaluated against the *serialized*
artifacts a run leaves behind, never live objects: what you can gate on
is exactly what a crashed or remote run wrote to disk, the same
philosophy as :mod:`repro.obs.summarize`.

Three objective kinds cover the serving contract:

``latency_p99``
    HDR-histogram p99 of a latency metric (default
    ``serve/latency_ms``) must not exceed ``objective_ms``.
``availability``
    The fraction of requests served *undegraded* — fresh index scores
    or a cache hit, not a breaker/failure fallback — must be at least
    ``objective``.  Unknown-user popularity responses are policy, not
    failures, and do not count against availability.
``degraded_rate``
    ``serve/degraded / serve/requests`` must stay at or below
    ``objective``.

Every result carries a **burn rate**: how much of the objective's budget
the observation consumes, normalized so ``1.0`` is exactly at the
objective.  For latency that is ``observed / objective``; for
availability it is ``error_rate / error_budget`` (the standard
burn-rate alerting quantity: 2.0 means errors are landing twice as fast
as the budget allows).

Exit-code contract of ``repro obs slo`` (pinned in tests): 0 every
objective with data passes, 1 any violation, 2 nothing evaluable
(missing run, no manifest, or no objective had data).
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from repro.obs.sink import read_manifest

__all__ = ["DEFAULT_SLOS", "SloConfigError", "SloResult",
           "evaluate_manifest", "evaluate_run", "evaluate_serve_results",
           "evaluate_slos", "format_report", "load_slo_config"]

DEFAULT_SLOS: List[Dict[str, object]] = [
    {"name": "latency-p99", "kind": "latency_p99",
     "metric": "serve/latency_ms", "objective_ms": 250.0},
    {"name": "availability", "kind": "availability", "objective": 0.999},
    {"name": "degraded-rate", "kind": "degraded_rate", "objective": 0.01},
]

_KINDS = ("latency_p99", "availability", "degraded_rate")


class SloConfigError(ValueError):
    """An SLO declaration file is malformed."""


@dataclass
class SloResult:
    """Outcome of one objective against one set of observations.

    ``ok`` is ``None`` when the run carried no data for the objective
    (e.g. a pure training run evaluated against serve SLOs) — reported,
    but neither a pass nor a violation.
    """

    name: str
    kind: str
    objective: float
    observed: Optional[float]
    burn_rate: Optional[float]
    ok: Optional[bool]
    detail: str


def load_slo_config(path=None) -> List[Dict[str, object]]:
    """Objectives from a JSON file, or the defaults when ``path`` is None.

    File shape: ``{"slos": [{"name": ..., "kind": ..., ...}, ...]}``.
    """
    if path is None:
        return [dict(slo) for slo in DEFAULT_SLOS]
    path = pathlib.Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SloConfigError(f"unreadable SLO config {path}: {exc}") from exc
    slos = data.get("slos") if isinstance(data, dict) else None
    if not isinstance(slos, list) or not slos:
        raise SloConfigError(
            f"SLO config {path} must be an object with a non-empty "
            f"'slos' list")
    for i, slo in enumerate(slos):
        if not isinstance(slo, dict) or "name" not in slo:
            raise SloConfigError(
                f"SLO config {path}: slos[{i}] needs a 'name'")
        if slo.get("kind") not in _KINDS:
            raise SloConfigError(
                f"SLO config {path}: slos[{i}] has unknown kind "
                f"{slo.get('kind')!r}; known: {list(_KINDS)}")
        key = ("objective_ms" if slo["kind"] == "latency_p99"
               else "objective")
        if not isinstance(slo.get(key), (int, float)):
            raise SloConfigError(
                f"SLO config {path}: slos[{i}] ({slo['name']}) needs a "
                f"numeric {key!r}")
    return [dict(slo) for slo in slos]


# ----------------------------------------------------------------------
# Core evaluation over plain observations
# ----------------------------------------------------------------------
def evaluate_slos(objectives: List[Dict[str, object]], *,
                  latency_p99_ms: Optional[Dict[str, float]] = None,
                  requests: Optional[int] = None,
                  degraded: Optional[int] = None) -> List[SloResult]:
    """Evaluate objectives against already-extracted observations.

    ``latency_p99_ms`` maps metric name → observed p99 (ms);
    ``requests`` / ``degraded`` are the serve counters.
    """
    latency_p99_ms = latency_p99_ms or {}
    results: List[SloResult] = []
    for slo in objectives:
        kind = str(slo["kind"])
        name = str(slo["name"])
        if kind == "latency_p99":
            objective = float(slo["objective_ms"])
            metric = str(slo.get("metric", "serve/latency_ms"))
            observed = latency_p99_ms.get(metric)
            if observed is None:
                results.append(SloResult(
                    name, kind, objective, None, None, None,
                    f"no data: metric {metric!r} not recorded"))
                continue
            burn = observed / objective if objective > 0 else math.inf
            results.append(SloResult(
                name, kind, objective, float(observed), burn,
                observed <= objective,
                f"p99={observed:.3f}ms vs objective<={objective:g}ms"))
            continue
        objective = float(slo["objective"])
        if not requests:
            results.append(SloResult(
                name, kind, objective, None, None, None,
                "no data: no serve requests recorded"))
            continue
        bad = int(degraded or 0)
        rate = bad / requests
        if kind == "availability":
            observed = 1.0 - rate
            budget = 1.0 - objective
            burn = (rate / budget if budget > 0
                    else (math.inf if bad else 0.0))
            ok = observed >= objective
            detail = (f"{observed:.5%} of {requests} requests undegraded "
                      f"vs objective>={objective:.5%}")
        else:  # degraded_rate
            observed = rate
            burn = (rate / objective if objective > 0
                    else (math.inf if bad else 0.0))
            ok = observed <= objective
            detail = (f"{bad}/{requests} degraded ({rate:.5%}) vs "
                      f"objective<={objective:.5%}")
        results.append(SloResult(name, kind, objective, observed, burn,
                                 ok, detail))
    return results


def _report(results: List[SloResult]) -> Dict[str, object]:
    n_violations = sum(1 for r in results if r.ok is False)
    n_no_data = sum(1 for r in results if r.ok is None)
    return {
        "passed": n_violations == 0 and n_no_data < len(results),
        "n_objectives": len(results),
        "n_violations": n_violations,
        "n_no_data": n_no_data,
        "results": [asdict(r) for r in results],
    }


# ----------------------------------------------------------------------
# Adapters: manifest / run dir / serve-bench results
# ----------------------------------------------------------------------
def evaluate_manifest(manifest: Dict[str, object],
                      objectives: Optional[List[Dict[str, object]]] = None
                      ) -> Dict[str, object]:
    """Evaluate a run manifest's metrics snapshot against objectives."""
    objectives = objectives if objectives is not None else load_slo_config()
    metrics = manifest.get("metrics") or {}
    counters = metrics.get("counters") or {}
    latency = {
        name: summary["p99"]
        for name, summary in (metrics.get("hdr") or {}).items()
        if summary.get("count")}
    results = evaluate_slos(
        objectives, latency_p99_ms=latency,
        requests=counters.get("serve/requests"),
        degraded=counters.get("serve/degraded"))
    return _report(results)


def evaluate_run(run_dir, objectives=None) -> Optional[Dict[str, object]]:
    """Evaluate a run directory; None when it has no manifest."""
    manifest = read_manifest(pathlib.Path(run_dir))
    if manifest is None:
        return None
    return evaluate_manifest(manifest, objectives)


def evaluate_serve_results(results: Dict[str, object],
                           objectives: Optional[List[Dict[str, object]]] =
                           None) -> Dict[str, object]:
    """Evaluate serve-bench results (the BENCH_serve.json dict).

    Latency comes from the cold indexed path (the honest number);
    availability from the aggregated service counters the bench records.
    """
    objectives = objectives if objectives is not None else load_slo_config()
    latency: Dict[str, float] = {}
    indexed = results.get("indexed") or {}
    if "p99_ms" in indexed:
        latency["serve/latency_ms"] = float(indexed["p99_ms"])
    stats = results.get("service_stats") or {}
    report = _report(evaluate_slos(
        objectives, latency_p99_ms=latency,
        requests=stats.get("requests"),
        degraded=stats.get("degraded")))
    return report


def format_report(report: Dict[str, object], title: str = "slo") -> str:
    """Human-readable report: one PASS/FAIL/NO-DATA line per objective."""
    lines = [f"{title}: {report['n_objectives']} objective(s), "
             f"{report['n_violations']} violation(s)"]
    for result in report["results"]:
        if result["ok"] is None:
            verdict = "NO-DATA"
        else:
            verdict = "PASS" if result["ok"] else "FAIL"
        burn = result["burn_rate"]
        burn_s = f"burn={burn:.2f}" if burn is not None else "burn=-"
        lines.append(f"  {verdict:>7} {result['name']:<16} {burn_s:<12} "
                     f"{result['detail']}")
    return "\n".join(lines)
