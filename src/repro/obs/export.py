"""Chrome trace-event export: one timeline for train and serve.

``repro obs export-trace <run-dir>`` converts a run's ``events.jsonl``
into the Chrome trace-event JSON format (the *JSON Object Format*:
``{"traceEvents": [...]}``), loadable in ``chrome://tracing`` and
https://ui.perfetto.dev.  Everything the run recorded lands on one
timeline:

* **spans** → complete events (``ph: "X"``) with microsecond ``ts`` /
  ``dur``.  Spans carrying a ``trace`` id (serve requests and everything
  that ran under their :class:`~repro.obs.trace_context.TraceContext`)
  are laned onto a per-request track; everything else — the
  ``fit > epoch > {sample, forward, backward, step}`` tree, fast-backend
  arena/kernel spans — stays on the main track.
* **trace events** (retry, timeout, breaker transition, fallback, cache
  hit) → thread-scoped instant events (``ph: "i"``, ``s: "t"``) on their
  request's track.
* **run events** (``run_start`` / ``run_end`` / supervisor checkpoints)
  → process-scoped instants on the main track.

Track names are emitted as ``thread_name`` metadata records, so Perfetto
labels lanes ``main`` and ``request <trace_id>``.

:func:`validate_chrome_trace` is a self-contained structural checker for
the subset of the format we emit; the test suite runs every export
through it, and the golden-file test pins the exact translation.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional

from repro.obs.sink import read_events, read_manifest

__all__ = ["build_chrome_trace", "export_chrome_trace",
           "validate_chrome_trace"]

_PID = 1
_MAIN_TID = 1
_SPAN_META_SKIP = ("trace",)   # identity, not an argument


def _category(name: str) -> str:
    """Event category from the name's path prefix (``serve/...`` → serve)."""
    return name.split("/", 1)[0] if "/" in name else "run"


def build_chrome_trace(events: List[Dict[str, object]],
                       manifest: Optional[Dict[str, object]] = None
                       ) -> Dict[str, object]:
    """Translate raw run events into a Chrome trace-event document."""
    trace_tids: Dict[str, int] = {}

    def tid_for(trace_id: Optional[object]) -> int:
        if trace_id is None:
            return _MAIN_TID
        tid = trace_tids.get(str(trace_id))
        if tid is None:
            tid = trace_tids[str(trace_id)] = _MAIN_TID + 1 + len(trace_tids)
        return tid

    out: List[Dict[str, object]] = []
    for event in events:
        kind = event.get("type")
        name = str(event.get("name", "?"))
        ts = round(float(event.get("t0", 0.0)) * 1e6, 3)
        if kind == "span":
            meta = dict(event.get("meta") or {})
            args = {k: v for k, v in meta.items()
                    if k not in _SPAN_META_SKIP}
            if event.get("count", 1) != 1:
                args["count"] = event["count"]
            out.append({
                "name": name, "cat": _category(name), "ph": "X",
                "ts": ts, "dur": round(float(event.get("dur", 0.0)) * 1e6, 3),
                "pid": _PID, "tid": tid_for(meta.get("trace")),
                "args": args,
            })
        elif kind == "trace_event":
            args = {k: v for k, v in event.items()
                    if k not in ("type", "name", "t0", "trace", "span")}
            out.append({
                "name": name, "cat": _category(name), "ph": "i",
                "ts": ts, "pid": _PID,
                "tid": tid_for(event.get("trace")), "s": "t",
                "args": args,
            })
        elif kind == "event":
            args = {k: v for k, v in event.items()
                    if k not in ("type", "name", "t0")}
            out.append({
                "name": name, "cat": "run", "ph": "i",
                "ts": ts, "pid": _PID, "tid": _MAIN_TID, "s": "g",
                "args": args,
            })

    run_id = str((manifest or {}).get("run_id", "run"))
    metadata: List[Dict[str, object]] = [
        {"name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
         "args": {"name": f"repro {run_id}"}},
        {"name": "thread_name", "ph": "M", "pid": _PID, "tid": _MAIN_TID,
         "args": {"name": "main"}},
    ]
    for trace_id, tid in sorted(trace_tids.items(), key=lambda kv: kv[1]):
        metadata.append(
            {"name": "thread_name", "ph": "M", "pid": _PID, "tid": tid,
             "args": {"name": f"request {trace_id}"}})

    doc: Dict[str, object] = {
        "traceEvents": metadata + out,
        "displayTimeUnit": "ms",
    }
    if manifest:
        doc["otherData"] = {
            key: manifest[key]
            for key in ("run_id", "git_sha", "started_at", "wall_s")
            if key in manifest}
    return doc


def validate_chrome_trace(doc: object) -> List[str]:
    """Structural check of a trace document; returns a list of problems.

    Covers the subset of the trace-event format this exporter emits
    (``X`` complete, ``i`` instant, ``M`` metadata).  An empty list
    means the document is loadable by the Chrome/Perfetto viewers.
    """
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"document must be a JSON object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["document must have a 'traceEvents' list"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "i", "M", "B", "E", "C"):
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str):
            errors.append(f"{where}: missing string 'name'")
        for field in ("pid", "tid"):
            if not isinstance(ev.get(field), int):
                errors.append(f"{where}: missing integer {field!r}")
        if ph == "M":
            args = ev.get("args")
            if not (isinstance(args, dict) and "name" in args):
                errors.append(
                    f"{where}: metadata needs args with a 'name'")
            continue
        if not isinstance(ev.get("ts"), (int, float)):
            errors.append(f"{where}: missing numeric 'ts'")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(
                    f"{where}: complete event needs 'dur' >= 0")
        if ph == "i" and ev.get("s") not in ("g", "p", "t"):
            errors.append(
                f"{where}: instant scope 's' must be g/p/t")
    return errors


def export_chrome_trace(run_dir, out: Optional[pathlib.Path] = None
                        ) -> pathlib.Path:
    """Write ``trace.json`` for a run directory; returns the output path.

    Raises :class:`FileNotFoundError` when the run directory has no
    events — the CLI maps that onto the exit-2 missing-run contract.
    """
    run_dir = pathlib.Path(run_dir)
    events = read_events(run_dir)
    if not events:
        raise FileNotFoundError(
            f"{run_dir} contains no events.jsonl to export")
    doc = build_chrome_trace(events, manifest=read_manifest(run_dir))
    out = pathlib.Path(out) if out is not None else run_dir / "trace.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=1) + "\n", encoding="utf-8")
    return out
