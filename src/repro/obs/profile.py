"""Stdlib sampling profiler with span attribution.

A background thread wakes every ``interval_s``, snapshots every other
thread's Python stack via ``sys._current_frames``, and accumulates them
as collapsed stacks — the ``frame;frame;frame count`` lines flamegraph
tooling (speedscope, flamegraph.pl, Perfetto's importer) consumes
directly.  Because it only *reads* frames at a low rate, overhead on the
profiled code is a fraction of a percent at the default 5 ms interval
(the overhead policy is documented in DESIGN.md §11 and the interval is
the knob: halve the rate, halve the cost).

**Span attribution**: when a telemetry run is active, each sample is
prefixed with a ``span:<open span path>`` frame built from the tracer's
open-span stack (e.g. ``span:fit>epoch>forward``).  A hot stack is then
not just "where" (numpy in ``_matmul``) but "when" (inside ``forward``
of ``fit``) — which is what apportions a slow request or a slow epoch
across the layered LogiRec forward pass.  The read is deliberately
lock-free: the tracer's stack is only appended/popped by the profiled
thread, and a torn read costs one mislabeled sample, not correctness.

``repro train --profile`` and ``repro serve bench --profile`` write
``profile.collapsed`` into the run directory; ``repro obs profile
<run-dir>`` renders the hottest stacks.
"""

from __future__ import annotations

import pathlib
import sys
import threading
from typing import Dict, List, Optional

__all__ = ["SamplingProfiler", "read_collapsed", "render_profile",
           "top_stacks"]

PROFILE_FILENAME = "profile.collapsed"


class SamplingProfiler:
    """Background-thread stack sampler producing collapsed stacks."""

    def __init__(self, interval_s: float = 0.005, max_depth: int = 64):
        if interval_s <= 0:
            raise ValueError(
                f"interval_s must be positive, got {interval_s}")
        self.interval_s = float(interval_s)
        self.max_depth = int(max_depth)
        self.samples: Dict[str, int] = {}
        self.n_samples = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-profiler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    @staticmethod
    def _span_tag() -> Optional[str]:
        """Open-span path of the active run's tracer, if any."""
        from repro.obs import run as _run
        r = _run._RUN
        if r is None:
            return None
        try:
            stack = list(r.tracer._stack)
        except Exception:  # pragma: no cover - torn read during mutation
            return None
        if not stack:
            return None
        return ">".join(span.name for span in stack[:6])

    def _collect(self, frame) -> str:
        parts: List[str] = []
        depth = 0
        while frame is not None and depth < self.max_depth:
            code = frame.f_code
            parts.append(
                f"{pathlib.Path(code.co_filename).stem}:{code.co_name}")
            frame = frame.f_back
            depth += 1
        parts.reverse()
        return ";".join(parts)

    def _loop(self) -> None:
        own = threading.get_ident()
        while not self._stop.wait(self.interval_s):
            tag = self._span_tag()
            for tid, frame in sys._current_frames().items():
                if tid == own:
                    continue
                stack = self._collect(frame)
                if not stack:
                    continue
                if tag is not None:
                    stack = f"span:{tag};{stack}"
                self.samples[stack] = self.samples.get(stack, 0) + 1
                self.n_samples += 1

    # ------------------------------------------------------------------
    def collapsed(self) -> List[str]:
        """``stack count`` lines, hottest first (flamegraph input)."""
        return [f"{stack} {count}" for stack, count in
                sorted(self.samples.items(),
                       key=lambda kv: (-kv[1], kv[0]))]

    def write(self, path) -> pathlib.Path:
        path = pathlib.Path(path)
        if path.is_dir():
            path = path / PROFILE_FILENAME
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("\n".join(self.collapsed()) + "\n",
                        encoding="utf-8")
        return path


# ----------------------------------------------------------------------
# Offline rendering
# ----------------------------------------------------------------------
def read_collapsed(path) -> Dict[str, int]:
    """Parse a collapsed-stack file back into ``{stack: count}``."""
    samples: Dict[str, int] = {}
    for line in pathlib.Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, count = line.rpartition(" ")
        if stack and count.isdigit():
            samples[stack] = samples.get(stack, 0) + int(count)
    return samples


def top_stacks(samples: Dict[str, int], top: int = 15) -> str:
    """The hottest stacks as a readable table (leaf frame + span tag)."""
    total = sum(samples.values())
    if not total:
        return "(no samples)"
    lines = [f"{total} samples, {len(samples)} unique stacks",
             f"{'samples':>8} {'share':>7}  hottest stacks "
             f"(leaf frame ⟵ callers)"]
    ranked = sorted(samples.items(), key=lambda kv: (-kv[1], kv[0]))
    for stack, count in ranked[:top]:
        frames = stack.split(";")
        span = ""
        if frames and frames[0].startswith("span:"):
            span = f"  [{frames[0][len('span:'):]}]"
            frames = frames[1:]
        shown = " ⟵ ".join(reversed(frames[-4:])) if frames else "?"
        lines.append(
            f"{count:>8} {100.0 * count / total:>6.1f}%  {shown}{span}")
    return "\n".join(lines)


def render_profile(path, top: int = 15) -> str:
    return top_stacks(read_collapsed(path), top=top)
