"""Event sinks and the run manifest.

A run directory holds two files:

* ``events.jsonl`` — one JSON object per line, appended as the run
  progresses (spans as they close, explicit events as they fire).  The
  stream is flushed per event so a crashed run still leaves a readable
  prefix — the whole point of flight-recorder telemetry.
* ``manifest.json`` — written once at :meth:`~repro.obs.run.Run.finish`:
  config, seed, git SHA, dataset statistics, final metrics, and the full
  metrics-registry snapshot.  Manifests are the diffable unit: two runs
  are comparable by ``diff <(jq -S . a/manifest.json) <(jq -S . b/...)``.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
from typing import Dict, List, Optional


def _json_default(value):
    """Serialize numpy scalars/arrays and paths without importing numpy."""
    if hasattr(value, "item") and getattr(value, "size", 1) == 1:
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    if isinstance(value, pathlib.Path):
        return str(value)
    return repr(value)


def dumps(event: Dict[str, object]) -> str:
    return json.dumps(event, default=_json_default, sort_keys=False)


class JsonlSink:
    """Append-only JSONL event stream."""

    def __init__(self, path: pathlib.Path):
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self.n_events = 0

    def write(self, event: Dict[str, object]) -> None:
        self._fh.write(dumps(event) + "\n")
        self._fh.flush()
        self.n_events += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class MemorySink:
    """In-process event list for runs without a directory (benches, tests)."""

    def __init__(self):
        self.events: List[Dict[str, object]] = []
        self.n_events = 0

    def write(self, event: Dict[str, object]) -> None:
        self.events.append(event)
        self.n_events += 1

    def close(self) -> None:
        pass


def git_sha(repo_dir: Optional[pathlib.Path] = None) -> Optional[str]:
    """Current commit SHA (with ``-dirty`` suffix), or None outside git."""
    cwd = str(repo_dir) if repo_dir is not None else None
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=5, check=True).stdout.strip()
        dirty = subprocess.run(
            ["git", "status", "--porcelain"], cwd=cwd, capture_output=True,
            text=True, timeout=5, check=True).stdout.strip()
        return sha + ("-dirty" if dirty else "")
    except (OSError, subprocess.SubprocessError):
        return None


def write_manifest(path: pathlib.Path, manifest: Dict[str, object]) -> None:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, default=_json_default)
                    + "\n", encoding="utf-8")


def read_events(run_dir: pathlib.Path) -> List[Dict[str, object]]:
    """Parse ``events.jsonl`` from a run directory (missing file -> [])."""
    path = pathlib.Path(run_dir) / "events.jsonl"
    if not path.exists():
        return []
    events = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def read_manifest(run_dir: pathlib.Path) -> Optional[Dict[str, object]]:
    path = pathlib.Path(run_dir) / "manifest.json"
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))
