"""Structured logging: one stderr handler for the whole ``repro`` tree.

:func:`get_logger` replaces the ad-hoc ``print`` diagnostics that used to
live in the training loop.  Configuration happens once, on the ``repro``
root logger, with a single :class:`logging.StreamHandler` on stderr —
re-calling never stacks handlers, and library consumers can silence or
re-route everything via the standard ``logging`` API.

:class:`RateLimiter` throttles per-epoch progress lines so a 300-epoch
verbose run emits a readable trickle instead of 300 lines; callers force
the first/last epoch through so boundaries are always visible.
"""

from __future__ import annotations

import logging
import sys
import time

_ROOT_NAME = "repro"
_FORMAT = "%(asctime)s %(levelname).1s %(name)s | %(message)s"
_DATE_FORMAT = "%H:%M:%S"


def get_logger(name: str = _ROOT_NAME) -> logging.Logger:
    """Logger under the ``repro`` hierarchy with the shared stderr handler."""
    root = logging.getLogger(_ROOT_NAME)
    if not any(isinstance(h, logging.StreamHandler) for h in root.handlers):
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT, _DATE_FORMAT))
        root.addHandler(handler)
        root.setLevel(logging.INFO)
        root.propagate = False
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


class RateLimiter:
    """Allow at most one event per ``min_interval_s`` of wall clock."""

    __slots__ = ("min_interval_s", "_last")

    def __init__(self, min_interval_s: float = 1.0):
        self.min_interval_s = float(min_interval_s)
        self._last = -float("inf")

    def ready(self, force: bool = False) -> bool:
        now = time.monotonic()
        if force or now - self._last >= self.min_interval_s:
            self._last = now
            return True
        return False
