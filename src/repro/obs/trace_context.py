"""Request-scoped trace identity, propagated through ``contextvars``.

A :class:`TraceContext` names one logical request as it flows through the
serving engine: the retry/deadline loop, circuit-breaker transitions, and
index scoring all happen *under* the request's context, so every span and
trace event they emit can be stitched back onto one timeline lane per
request by the Chrome-trace exporter (:mod:`repro.obs.export`).

The context travels in a :class:`contextvars.ContextVar`, not as an
explicit parameter: instrumented code deep in the call tree (the guarded
scoring loop, the breaker's transition hook) reads :func:`current_trace`
without any plumbing through intermediate signatures.  The engine's
batched path, which interleaves work for many requests inside one call,
re-binds the right context around each request's slice of work with
:func:`bind_trace`.

Trace ids are a process-local monotonically increasing counter rendered
as fixed-width hex — deterministic within a process (golden tests) and
cheap to mint.  Cross-process uniqueness is not a goal here: a run
directory is written by one process, and the sharded front-end planned
on the ROADMAP will namespace ids per worker.
"""

from __future__ import annotations

import contextvars
import itertools
from typing import Dict, Optional

__all__ = ["TraceContext", "bind_trace", "current_trace", "new_trace",
           "reset_trace_ids"]

_TRACE_IDS = itertools.count(1)
_CURRENT: "contextvars.ContextVar[Optional[TraceContext]]" = \
    contextvars.ContextVar("repro_trace_context", default=None)


class TraceContext:
    """Identity of one in-flight request (trace id + root span id)."""

    __slots__ = ("trace_id", "span_id", "name", "meta")

    def __init__(self, trace_id: str, name: str = "request",
                 span_id: int = 1,
                 meta: Optional[Dict[str, object]] = None):
        self.trace_id = trace_id
        self.span_id = span_id
        self.name = name
        self.meta = meta or {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TraceContext({self.trace_id!r}, name={self.name!r})"


def new_trace(name: str = "request", **meta) -> TraceContext:
    """Mint a fresh trace context (does not bind it; see :func:`bind_trace`)."""
    return TraceContext(f"{next(_TRACE_IDS):08x}", name=name, meta=meta)


def current_trace() -> Optional[TraceContext]:
    """The trace context bound to the current execution context, if any."""
    return _CURRENT.get()


class _Bound:
    """Context manager that binds a trace context for its ``with`` body.

    ``bind_trace(None)`` is a no-op manager, so callers can bind
    unconditionally without branching on whether telemetry is active.
    """

    __slots__ = ("_ctx", "_token")

    def __init__(self, ctx: Optional[TraceContext]):
        self._ctx = ctx
        self._token = None

    def __enter__(self) -> Optional[TraceContext]:
        if self._ctx is not None:
            self._token = _CURRENT.set(self._ctx)
        return self._ctx

    def __exit__(self, *exc) -> bool:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        return False


def bind_trace(ctx: Optional[TraceContext]) -> _Bound:
    """Bind ``ctx`` as the current trace for the ``with`` body."""
    return _Bound(ctx)


def reset_trace_ids() -> None:
    """Restart the id counter (deterministic golden tests only)."""
    global _TRACE_IDS
    _TRACE_IDS = itertools.count(1)
