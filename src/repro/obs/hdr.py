"""HDR-style histograms: log-scaled buckets, bounded error, mergeable.

The reservoir histogram in :mod:`repro.obs.metrics` is right for training
statistics (unknown range, moments matter most) but wrong for serving
latency: reservoir percentiles carry sampling noise that grows in the
tail — exactly where SLOs live — and two reservoirs cannot be merged,
which the planned sharded multi-worker front-end needs.

:class:`HdrHistogram` fixes both with geometric buckets.  With relative
error bound ``eps``, bucket edges grow by ``base = (1 + eps)/(1 - eps)``
and a value is reported as the arithmetic midpoint of its bucket, so the
worst-case relative error of any reported quantile value is::

    (hi - lo) / (hi + lo)  =  (base - 1) / (base + 1)  =  eps

Counts are exact (no sampling), so a percentile is the *true* rank's
bucket — only the value inside the bucket is approximated.  Two
histograms with identical bucket geometry merge by adding their count
arrays, making percentiles composable across processes, shards, and
rolling time slices; :meth:`to_dict`/:meth:`from_dict` give the sparse
wire form.

:class:`WindowedHdrHistogram` layers a rolling time window on top:
``n_slices`` sub-histograms rotate as wall-clock advances, and a
snapshot merges the slices that are still inside the window — recent
latency without unbounded memory or a decay heuristic.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["HdrHistogram", "WindowedHdrHistogram"]


class HdrHistogram:
    """Fixed-geometry log-bucketed histogram with exact counts.

    Parameters
    ----------
    name:
        Metric name (merge requires equal names unless ``check_name``
        is disabled by the caller passing the same name).
    rel_error:
        Worst-case relative error of reported percentile values for
        observations inside ``[min_value, max_value)``.
    min_value, max_value:
        Tracked range.  Observations below ``min_value`` land in one
        underflow bucket (reported as the exact observed minimum);
        observations at or above ``max_value`` land in one overflow
        bucket (reported as the exact observed maximum).
    """

    __slots__ = ("name", "rel_error", "min_value", "max_value", "_base",
                 "_log_base", "n_buckets", "counts", "count", "total",
                 "min", "max", "_lock")

    def __init__(self, name: str, rel_error: float = 0.01,
                 min_value: float = 1e-3, max_value: float = 1e7):
        if not 0.0 < rel_error < 1.0:
            raise ValueError(
                f"rel_error must be in (0, 1), got {rel_error}")
        if min_value <= 0:
            raise ValueError(
                f"min_value must be positive, got {min_value}")
        if max_value <= min_value:
            raise ValueError(
                f"max_value must exceed min_value, got "
                f"[{min_value}, {max_value}]")
        self.name = name
        self.rel_error = float(rel_error)
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self._base = (1.0 + rel_error) / (1.0 - rel_error)
        self._log_base = math.log(self._base)
        # Buckets: [0] underflow, [1..n] geometric, [n+1] overflow.
        self.n_buckets = int(math.ceil(
            math.log(max_value / min_value) / self._log_base))
        self.counts: List[int] = [0] * (self.n_buckets + 2)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _index(self, value: float) -> int:
        if value < self.min_value:
            return 0
        if value >= self.max_value:
            return self.n_buckets + 1
        i = int(math.log(value / self.min_value) / self._log_base)
        # Float edges: nudge into the bucket that actually brackets v.
        lo = self.min_value * self._base ** i
        if value < lo:
            i -= 1
        elif value >= lo * self._base:
            i += 1
        return min(max(i, 0), self.n_buckets - 1) + 1

    def _representative(self, bucket: int) -> float:
        if bucket == 0:                       # underflow
            return self.min if self.min < self.min_value else self.min_value
        if bucket == self.n_buckets + 1:      # overflow
            return self.max if self.max >= self.max_value else self.max_value
        lo = self.min_value * self._base ** (bucket - 1)
        return 0.5 * (lo + lo * self._base)

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        value = float(value)
        idx = self._index(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            self.counts[idx] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def percentile(self, q: float) -> float:
        """Value at percentile ``q`` in [0, 100], within ``rel_error``.

        ``q=0`` and ``q=100`` return the exact observed min/max; an
        empty histogram returns NaN.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        with self._lock:
            count = self.count
            counts = list(self.counts)
            lo, hi = self.min, self.max
        if count == 0:
            return math.nan
        if q == 0.0:
            return lo
        if q == 100.0:
            return hi
        rank = max(1, math.ceil(q / 100.0 * count))
        cum = 0
        for bucket, n in enumerate(counts):
            cum += n
            if cum >= rank:
                return min(max(self._representative(bucket), lo), hi)
        return hi  # pragma: no cover - rank <= count by construction

    # ------------------------------------------------------------------
    def merge(self, other: "HdrHistogram") -> "HdrHistogram":
        """Add ``other``'s observations into this histogram (in place).

        Requires identical bucket geometry — merging histograms with
        different error bounds or ranges would silently corrupt
        percentiles, so it raises instead.
        """
        if (self.rel_error != other.rel_error
                or self.min_value != other.min_value
                or self.max_value != other.max_value):
            raise ValueError(
                f"cannot merge {other.name!r} into {self.name!r}: bucket "
                f"geometry differs (rel_error/min_value/max_value "
                f"{other.rel_error}/{other.min_value}/{other.max_value} "
                f"vs {self.rel_error}/{self.min_value}/{self.max_value})")
        with other._lock:
            counts = list(other.counts)
            count, total = other.count, other.total
            omin, omax = other.min, other.max
        with self._lock:
            for i, n in enumerate(counts):
                self.counts[i] += n
            self.count += count
            self.total += total
            if omin < self.min:
                self.min = omin
            if omax > self.max:
                self.max = omax
        return self

    def to_dict(self) -> Dict[str, object]:
        """Sparse, JSON-safe wire form for cross-process merging."""
        with self._lock:
            buckets = {str(i): n for i, n in enumerate(self.counts) if n}
            return {
                "name": self.name,
                "rel_error": self.rel_error,
                "min_value": self.min_value,
                "max_value": self.max_value,
                "count": self.count,
                "total": self.total,
                "min": None if self.count == 0 else self.min,
                "max": None if self.count == 0 else self.max,
                "buckets": buckets,
            }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "HdrHistogram":
        hist = cls(str(data["name"]), rel_error=float(data["rel_error"]),
                   min_value=float(data["min_value"]),
                   max_value=float(data["max_value"]))
        for key, n in dict(data.get("buckets", {})).items():
            hist.counts[int(key)] = int(n)
        hist.count = int(data.get("count", 0))
        hist.total = float(data.get("total", 0.0))
        if hist.count:
            hist.min = float(data["min"])
            hist.max = float(data["max"])
        return hist

    def summary(self) -> Dict[str, object]:
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
            "rel_error": self.rel_error,
        }


class WindowedHdrHistogram:
    """Rolling-window percentiles over rotating :class:`HdrHistogram` slices.

    The window ``[now - window_s, now]`` is covered by ``n_slices``
    equal time slices, each its own histogram.  ``observe`` writes to
    the current slice; :meth:`snapshot` merges the live slices into one
    mergeable histogram, so "p99 over the last minute" costs one pass
    over bucket arrays.  ``clock`` is injectable for deterministic
    tests.
    """

    __slots__ = ("name", "window_s", "n_slices", "_slice_s", "_clock",
                 "_slices", "_kwargs", "_lock")

    def __init__(self, name: str, window_s: float = 60.0,
                 n_slices: int = 6,
                 clock: Callable[[], float] = time.monotonic, **kwargs):
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        if n_slices <= 0:
            raise ValueError(f"n_slices must be positive, got {n_slices}")
        self.name = name
        self.window_s = float(window_s)
        self.n_slices = int(n_slices)
        self._slice_s = self.window_s / self.n_slices
        self._clock = clock
        self._kwargs = kwargs
        # deque of (slice_index, HdrHistogram), newest last.
        self._slices: "deque[Tuple[int, HdrHistogram]]" = deque()
        self._lock = threading.Lock()

    def _rotate(self) -> HdrHistogram:
        """Drop expired slices; return the current slice's histogram."""
        now_idx = int(self._clock() / self._slice_s)
        oldest_live = now_idx - self.n_slices + 1
        while self._slices and self._slices[0][0] < oldest_live:
            self._slices.popleft()
        if not self._slices or self._slices[-1][0] != now_idx:
            self._slices.append(
                (now_idx, HdrHistogram(self.name, **self._kwargs)))
        return self._slices[-1][1]

    def observe(self, value: float) -> None:
        with self._lock:
            current = self._rotate()
        current.observe(value)

    def snapshot(self) -> HdrHistogram:
        """Merged histogram of every slice still inside the window."""
        with self._lock:
            self._rotate()
            live = [hist for _, hist in self._slices]
        merged = HdrHistogram(self.name, **self._kwargs)
        for hist in live:
            merged.merge(hist)
        return merged

    def summary(self) -> Dict[str, object]:
        out = self.snapshot().summary()
        out["window_s"] = self.window_s
        return out
