"""LogiRec / LogiRec++ — logical relation modeling and mining in
hyperbolic space for recommendation (ICDE 2024), reproduced from scratch.

Public API highlights:

* :class:`repro.core.LogiRec` / :class:`repro.core.LogiRecPP` — the
  paper's models (objectives Eq. 10 / Eq. 15);
* :mod:`repro.models` — the 13 baselines of the paper's Table II;
* :mod:`repro.data` — synthetic datasets mirroring the four benchmarks;
* :mod:`repro.eval` — unsampled Recall/NDCG@K and Wilcoxon testing;
* :mod:`repro.experiments` — regenerate every table and figure.

Quickstart::

    from repro.core import LogiRecPP, LogiRecConfig
    from repro.data import load_dataset, temporal_split
    from repro.eval import Evaluator

    dataset = load_dataset("cd")
    split = temporal_split(dataset)
    model = LogiRecPP(dataset.n_users, dataset.n_items, dataset.n_tags,
                      LogiRecConfig(epochs=120, lam=5.0))
    model.fit(dataset, split, evaluator=Evaluator(dataset, split))
"""

__version__ = "1.0.0"

from repro.core import LogiRec, LogiRecConfig, LogiRecPP
from repro.data import (InteractionDataset, SyntheticConfig,
                        generate_dataset, load_dataset, temporal_split)
from repro.eval import Evaluator
from repro.taxonomy import Taxonomy, extract_relations

__all__ = [
    "LogiRec",
    "LogiRecPP",
    "LogiRecConfig",
    "InteractionDataset",
    "SyntheticConfig",
    "generate_dataset",
    "load_dataset",
    "temporal_split",
    "Evaluator",
    "Taxonomy",
    "extract_relations",
    "__version__",
]
