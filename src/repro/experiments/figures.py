"""Figure data generators (Fig. 5, Fig. 7, Fig. 8).

Figures are reproduced as the *data series* the paper plots; no plotting
dependency is assumed offline.  Each function returns arrays ready to plot
and, where the paper's claim is a trend, the quantity that captures it
(correlations, separation scores).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
from scipy import stats

from repro.core.logirec import LogiRec
from repro.data import InteractionDataset
from repro.data.dataset import Split
from repro.manifolds.maps import lorentz_to_poincare_np


def user_tag_type_distribution(dataset: InteractionDataset,
                               split: Optional[Split] = None) -> Dict:
    """Fig. 5(a): histogram of #distinct tag types per user.

    Returns ``{"tag_type_counts": (n_users,), "hist_values",
    "hist_edges"}``; the paper's observation is a mode around a moderate
    count with a long tail of diverse users.
    """
    indices = split.train if split is not None else None
    user_tags = dataset.user_tag_lists(indices)
    counts = np.array([len(np.unique(tags)) for tags in
                       user_tags.values()])
    values, edges = np.histogram(counts,
                                 bins=np.arange(0, counts.max() + 2))
    return {"tag_type_counts": counts, "hist_values": values,
            "hist_edges": edges}


def tag_types_vs_origin_distance(model: LogiRec,
                                 dataset: InteractionDataset,
                                 split: Optional[Split] = None) -> Dict:
    """Fig. 5(b): #interacted tag types vs hyperbolic distance to origin.

    The paper's claim is a *negative* correlation: users with fewer tag
    types (specific preferences) sit farther from the origin.  Returns the
    paired arrays plus the Spearman correlation capturing the trend.
    """
    indices = split.train if split is not None else None
    user_tags = dataset.user_tag_lists(indices)
    users = np.array(sorted(user_tags))
    tag_types = np.array([len(np.unique(user_tags[u])) for u in users])
    user_emb, _ = model.final_embeddings()
    if model.config.hyperbolic:
        distances = np.arccosh(np.maximum(user_emb[users, 0], 1.0))
    else:
        distances = np.linalg.norm(user_emb[users], axis=-1)
    corr, p_value = stats.spearmanr(tag_types, distances)
    return {"users": users, "tag_types": tag_types,
            "distances": distances,
            "spearman_corr": float(corr), "p_value": float(p_value)}


def embedding_projection(model: LogiRec, dataset: InteractionDataset,
                         dims: int = 2) -> Dict:
    """Fig. 7/8 raw material: item embeddings projected into the Poincare
    disk (first ``dims`` spatial coordinates after the Lorentz->Poincare
    map), labelled by each item's primary (deepest) tag."""
    _, item_emb = model.final_embeddings()
    if model.config.hyperbolic:
        poincare = lorentz_to_poincare_np(item_emb)
    else:
        poincare = item_emb
    coords = poincare[:, :dims]
    labels = _primary_tags(dataset)
    return {"coords": coords, "labels": labels}


def _primary_tags(dataset: InteractionDataset) -> np.ndarray:
    """Each item's deepest tag (leaf-most membership)."""
    levels = dataset.taxonomy.levels
    csr = dataset.item_tags
    labels = np.full(dataset.n_items, -1, dtype=np.int64)
    for item in range(dataset.n_items):
        tags = csr.indices[csr.indptr[item]:csr.indptr[item + 1]]
        if len(tags):
            labels[item] = tags[np.argmax(levels[tags])]
    return labels


def tag_separation_scores(model, dataset: InteractionDataset,
                          pairs: Optional[np.ndarray] = None) -> Dict:
    """Fig. 7/8's quantitative claim: how well items of exclusive tag
    pairs separate in the embedding space.

    For each exclusive tag pair, computes a silhouette-style score:
    (mean between-group distance - mean within-group distance) / max.
    Positive = separated.  Works for any model exposing
    ``score_users``-compatible item embeddings via ``final_embeddings`` or
    an ``item_emb`` parameter.

    Returns per-pair scores split by whether the pair was planted as
    *overlapping* (mislabelled exclusion) — LogiRec++ should keep truly
    exclusive pairs separated while not over-separating the overlapping
    ones' shared items.
    """
    item_emb = _item_embedding_array(model)
    csr = dataset.item_tags.tocsc()
    if pairs is None:
        pairs = dataset.relations.exclusion
    overlapping = {frozenset(map(int, p))
                   for p in getattr(dataset, "overlapping_pairs", [])}
    scores, is_overlap = [], []
    for t_i, t_j in pairs:
        items_i = csr.indices[csr.indptr[t_i]:csr.indptr[t_i + 1]]
        items_j = csr.indices[csr.indptr[t_j]:csr.indptr[t_j + 1]]
        if len(items_i) < 2 or len(items_j) < 2:
            continue
        emb_i, emb_j = item_emb[items_i], item_emb[items_j]
        within = (_mean_pairwise(emb_i) + _mean_pairwise(emb_j)) / 2.0
        between = float(np.mean(
            np.linalg.norm(emb_i[:, None, :] - emb_j[None, :, :],
                           axis=-1)))
        denom = max(within, between, 1e-12)
        scores.append((between - within) / denom)
        is_overlap.append(frozenset((int(t_i), int(t_j))) in overlapping)
    scores = np.asarray(scores)
    is_overlap = np.asarray(is_overlap, dtype=bool)
    return {
        "scores": scores,
        "is_overlapping_pair": is_overlap,
        "mean_score": float(scores.mean()) if len(scores) else 0.0,
        "mean_true_exclusive": float(scores[~is_overlap].mean())
        if (~is_overlap).any() else 0.0,
        "mean_overlapping": float(scores[is_overlap].mean())
        if is_overlap.any() else 0.0,
    }


def _mean_pairwise(emb: np.ndarray) -> float:
    diff = emb[:, None, :] - emb[None, :, :]
    dists = np.linalg.norm(diff, axis=-1)
    n = len(emb)
    return float(dists.sum() / (n * (n - 1)))


def _item_embedding_array(model) -> np.ndarray:
    """Extract a flat item-embedding matrix from any zoo model."""
    if hasattr(model, "final_embeddings"):
        _, item_emb = model.final_embeddings()
        return item_emb
    for attr in ("item_emb", "item_hyp", "item_gmf"):
        if hasattr(model, attr):
            return getattr(model, attr).data
    raise TypeError(f"cannot extract item embeddings from "
                    f"{type(model).__name__}")
