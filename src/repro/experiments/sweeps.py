"""Hyperparameter studies (Table IV) and the λ sweep (Fig. 6).

Table IV varies one hyperparameter at a time around the tuned operating
point: graph depth L, logical weight λ, margin m, and dimension d.  The
paper sweeps d over {32, 64, 128} at full data scale; at bench scale the
equivalent capacity sweep is {8, 16, 32}.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence

from repro.core import LogiRecConfig, LogiRecPP
from repro.data import load_dataset, temporal_split
from repro.eval import Evaluator
from repro.experiments.runner import (LAMBDA_BY_DATASET,
                                      LAYERS_BY_DATASET, build_model)

# One-at-a-time grids, mirroring Table IV's rows.
HYPERPARAM_GRID = {
    "n_layers": [1, 2, 3, 4],
    "lam": [0.0, 0.01, 0.1, 1.0, 1.5],
    "margin": [0.0, 0.1, 0.5, 1.0],
    "dim": [8, 16, 32],
}


def _base_config(ds_name: str, seed: int, epochs: Optional[int]
                 ) -> LogiRecConfig:
    return LogiRecConfig(dim=16, epochs=epochs if epochs else 300,
                         batch_size=4096, lr=0.01, margin=0.5,
                         n_negatives=2,
                         lam=LAMBDA_BY_DATASET.get(ds_name, 1.0),
                         n_layers=LAYERS_BY_DATASET.get(ds_name, 3),
                         seed=seed)


def run_hyperparameter_study(dataset_names: Sequence[str] = ("cd",),
                             params: Optional[Sequence[str]] = None,
                             seed: int = 0,
                             epochs: Optional[int] = None,
                             ks: Sequence[int] = (10,)) -> Dict:
    """Table IV: sweep each hyperparameter one at a time.

    Returns ``{dataset: {param: {value: {metric: pct}}}}``.
    """
    params = list(params) if params else list(HYPERPARAM_GRID)
    out: Dict = {}
    for ds_name in dataset_names:
        dataset = load_dataset(ds_name)
        split = temporal_split(dataset)
        evaluator = Evaluator(dataset, split, ks=ks)
        base = _base_config(ds_name, seed, epochs)
        out[ds_name] = {}
        for param in params:
            out[ds_name][param] = {}
            for value in HYPERPARAM_GRID[param]:
                cfg = replace(base, **{param: value})
                model = LogiRecPP(dataset.n_users, dataset.n_items,
                                  dataset.n_tags, cfg)
                model.fit(dataset, split, evaluator=evaluator)
                result = evaluator.evaluate_test(model)
                out[ds_name][param][value] = result.means
    return out


def run_lambda_sweep(dataset_names: Sequence[str] = ("ciao", "cd"),
                     lambdas: Sequence[float] = (0.0, 0.01, 0.1, 1.0, 1.5),
                     baseline: str = "HRCF", seed: int = 0,
                     epochs: Optional[int] = None,
                     ks: Sequence[int] = (10,)) -> Dict:
    """Fig. 6: Recall/NDCG@10 of LogiRec++ across λ vs a fixed baseline.

    Returns ``{dataset: {"baseline": {metric: pct},
    "series": {lam: {metric: pct}}}}``.
    """
    out: Dict = {}
    for ds_name in dataset_names:
        dataset = load_dataset(ds_name)
        split = temporal_split(dataset)
        evaluator = Evaluator(dataset, split, ks=ks)
        base_model = build_model(baseline, dataset, seed)
        if epochs is not None:
            base_model.config.epochs = epochs
        base_model.fit(dataset, split, evaluator=evaluator)
        out[ds_name] = {
            "baseline": evaluator.evaluate_test(base_model).means,
            "series": {},
        }
        cfg0 = _base_config(ds_name, seed, epochs)
        for lam in lambdas:
            cfg = replace(cfg0, lam=lam)
            model = LogiRecPP(dataset.n_users, dataset.n_items,
                              dataset.n_tags, cfg)
            model.fit(dataset, split, evaluator=evaluator)
            out[ds_name]["series"][lam] = (
                evaluator.evaluate_test(model).means)
    return out
