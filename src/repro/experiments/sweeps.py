"""Hyperparameter studies (Table IV) and the λ sweep (Fig. 6).

Table IV varies one hyperparameter at a time around the tuned operating
point: graph depth L, logical weight λ, margin m, and dimension d.  The
paper sweeps d over {32, 64, 128} at full data scale; at bench scale the
equivalent capacity sweep is {8, 16, 32}.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core import LogiRecConfig
from repro.experiments.runner import (LAMBDA_BY_DATASET,
                                      LAYERS_BY_DATASET)

# One-at-a-time grids, mirroring Table IV's rows.
HYPERPARAM_GRID = {
    "n_layers": [1, 2, 3, 4],
    "lam": [0.0, 0.01, 0.1, 1.0, 1.5],
    "margin": [0.0, 0.1, 0.5, 1.0],
    "dim": [8, 16, 32],
}


def _base_config(ds_name: str, seed: int, epochs: Optional[int]
                 ) -> LogiRecConfig:
    return LogiRecConfig(dim=16, epochs=epochs if epochs else 300,
                         batch_size=4096, lr=0.01, margin=0.5,
                         n_negatives=2,
                         lam=LAMBDA_BY_DATASET.get(ds_name, 1.0),
                         n_layers=LAYERS_BY_DATASET.get(ds_name, 3),
                         seed=seed)


def run_hyperparameter_study(dataset_names: Sequence[str] = ("cd",),
                             params: Optional[Sequence[str]] = None,
                             seed: int = 0,
                             epochs: Optional[int] = None,
                             ks: Sequence[int] = (10,)) -> Dict:
    """Table IV: sweep each hyperparameter one at a time.

    .. deprecated:: PR10
        Build an :class:`~repro.experiments.dag.ExperimentSpec` with
        ``kind="sweep"`` and call
        :func:`~repro.experiments.dag.run_experiment` instead.

    Returns ``{dataset: {param: {value: {metric: pct}}}}``.
    """
    import warnings
    warnings.warn(
        "run_hyperparameter_study(...) is deprecated; use "
        "ExperimentSpec(kind='sweep', ...) with run_experiment()",
        DeprecationWarning, stacklevel=2)
    from repro.experiments.dag import ExperimentSpec, run_experiment
    spec = ExperimentSpec(
        kind="sweep", datasets=tuple(dataset_names),
        params=tuple(params) if params else (),
        seeds=(int(seed),), epochs=epochs, ks=tuple(ks))
    return run_experiment(spec).sweep()


def run_lambda_sweep(dataset_names: Sequence[str] = ("ciao", "cd"),
                     lambdas: Sequence[float] = (0.0, 0.01, 0.1, 1.0, 1.5),
                     baseline: str = "HRCF", seed: int = 0,
                     epochs: Optional[int] = None,
                     ks: Sequence[int] = (10,)) -> Dict:
    """Fig. 6: Recall/NDCG@10 of LogiRec++ across λ vs a fixed baseline.

    .. deprecated:: PR10
        Build an :class:`~repro.experiments.dag.ExperimentSpec` with
        ``kind="lambda"`` and call
        :func:`~repro.experiments.dag.run_experiment` instead.

    Returns ``{dataset: {"baseline": {metric: pct},
    "series": {lam: {metric: pct}}}}``.
    """
    import warnings
    warnings.warn(
        "run_lambda_sweep(...) is deprecated; use "
        "ExperimentSpec(kind='lambda', ...) with run_experiment()",
        DeprecationWarning, stacklevel=2)
    from repro.experiments.dag import ExperimentSpec, run_experiment
    spec = ExperimentSpec(
        kind="lambda", datasets=tuple(dataset_names),
        lambdas=tuple(lambdas), baseline=str(baseline),
        seeds=(int(seed),), epochs=epochs, ks=tuple(ks))
    return run_experiment(spec).lambda_sweep()
