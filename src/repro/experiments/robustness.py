"""Robustness of logical-relation mining to taxonomy corruption.

The paper's motivation for LogiRec++ is that extracted logical relations
are *inaccurate and coarse*.  This experiment makes that quantitative:
corrupt a growing fraction of the taxonomy (rewire child tags to random
parents, which scrambles both hierarchy edges and the derived
exclusions), retrain, and measure how gracefully LogiRec (no mining) and
LogiRec++ (behaviour-driven mining) degrade.

The paper's implied shape: LogiRec++'s advantage over LogiRec *grows*
with noise, because the weighting mechanism lets reliable users' behaviour
override the corrupted relations.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.data import InteractionDataset
from repro.taxonomy import Taxonomy, extract_relations


def corrupt_taxonomy(taxonomy: Taxonomy, fraction: float,
                     rng: np.random.Generator) -> Taxonomy:
    """Rewire a fraction of non-root tags to random valid parents.

    A new parent is any tag at the original parent's level (keeping the
    level structure intact so Eq. 12's level weighting stays defined)
    other than the tag itself or its own descendants (no cycles).
    """
    parents = taxonomy.parents.copy()
    non_roots = [t for t in range(taxonomy.n_tags) if parents[t] != -1]
    n_corrupt = int(round(len(non_roots) * fraction))
    victims = rng.choice(non_roots, size=n_corrupt, replace=False)
    for tag in victims:
        old_parent = int(parents[tag])
        level = taxonomy.level(old_parent)
        forbidden = set(taxonomy.descendants(int(tag))) | {int(tag)}
        candidates = [c for c in taxonomy.tags_at_level(level)
                      if c not in forbidden]
        if candidates:
            parents[tag] = int(rng.choice(candidates))
    return Taxonomy(parents, taxonomy.names)


def _with_taxonomy(dataset: InteractionDataset,
                   taxonomy: Taxonomy) -> InteractionDataset:
    """Clone the dataset with a replacement taxonomy + re-extracted
    relations (interactions and Q are untouched)."""
    clone = InteractionDataset(
        user_ids=dataset.user_ids, item_ids=dataset.item_ids,
        timestamps=dataset.timestamps, n_users=dataset.n_users,
        n_items=dataset.n_items, item_tags=dataset.item_tags,
        taxonomy=taxonomy,
        relations=extract_relations(taxonomy, dataset.item_tags),
        name=dataset.name)
    for attr in ("user_focus", "user_focus_level", "user_consistency",
                 "overlapping_pairs"):
        if hasattr(dataset, attr):
            setattr(clone, attr, getattr(dataset, attr))
    return clone


def run_noise_robustness(dataset_name: str = "cd",
                         fractions: Sequence[float] = (0.0, 0.2, 0.5),
                         epochs: Optional[int] = None,
                         seed: int = 0) -> Dict[float, Dict[str, dict]]:
    """Recall/NDCG of LogiRec vs LogiRec++ under taxonomy corruption.

    .. deprecated:: PR10
        Build an :class:`~repro.experiments.dag.ExperimentSpec` with
        ``kind="robustness"`` and call
        :func:`~repro.experiments.dag.run_experiment` instead.  Each
        fraction's corruption now draws from an independent
        ``(seed, fraction)``-keyed RNG stream instead of one sequential
        stream, so a fraction's realization no longer depends on which
        other fractions ran before it (a prerequisite for caching
        per-fraction nodes independently).

    Returns ``{fraction: {"LogiRec": metrics, "LogiRec++": metrics}}``.
    """
    import warnings
    warnings.warn(
        "run_noise_robustness(...) is deprecated; use "
        "ExperimentSpec(kind='robustness', ...) with run_experiment()",
        DeprecationWarning, stacklevel=2)
    from repro.experiments.dag import ExperimentSpec, run_experiment
    spec = ExperimentSpec(
        kind="robustness", datasets=(str(dataset_name),),
        fractions=tuple(fractions), seeds=(int(seed),), epochs=epochs)
    return run_experiment(spec).robustness()


def format_robustness_table(results: Dict[float, Dict[str, dict]],
                            metric: str = "recall@10") -> str:
    lines = [f"Taxonomy-corruption robustness ({metric}, %):",
             "corrupted   LogiRec   LogiRec++   mining gain"]
    for fraction in sorted(results):
        plain = results[fraction]["LogiRec"][metric]
        mined = results[fraction]["LogiRec++"][metric]
        lines.append(f"{fraction:8.0%}   {plain:7.2f}   {mined:9.2f}"
                     f"   {mined - plain:+10.2f}")
    return "\n".join(lines)
