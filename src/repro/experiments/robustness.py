"""Robustness of logical-relation mining to taxonomy corruption.

The paper's motivation for LogiRec++ is that extracted logical relations
are *inaccurate and coarse*.  This experiment makes that quantitative:
corrupt a growing fraction of the taxonomy (rewire child tags to random
parents, which scrambles both hierarchy edges and the derived
exclusions), retrain, and measure how gracefully LogiRec (no mining) and
LogiRec++ (behaviour-driven mining) degrade.

The paper's implied shape: LogiRec++'s advantage over LogiRec *grows*
with noise, because the weighting mechanism lets reliable users' behaviour
override the corrupted relations.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core import LogiRec, LogiRecConfig, LogiRecPP
from repro.data import InteractionDataset, load_dataset, temporal_split
from repro.eval import Evaluator
from repro.taxonomy import Taxonomy, extract_relations


def corrupt_taxonomy(taxonomy: Taxonomy, fraction: float,
                     rng: np.random.Generator) -> Taxonomy:
    """Rewire a fraction of non-root tags to random valid parents.

    A new parent is any tag at the original parent's level (keeping the
    level structure intact so Eq. 12's level weighting stays defined)
    other than the tag itself or its own descendants (no cycles).
    """
    parents = taxonomy.parents.copy()
    non_roots = [t for t in range(taxonomy.n_tags) if parents[t] != -1]
    n_corrupt = int(round(len(non_roots) * fraction))
    victims = rng.choice(non_roots, size=n_corrupt, replace=False)
    for tag in victims:
        old_parent = int(parents[tag])
        level = taxonomy.level(old_parent)
        forbidden = set(taxonomy.descendants(int(tag))) | {int(tag)}
        candidates = [c for c in taxonomy.tags_at_level(level)
                      if c not in forbidden]
        if candidates:
            parents[tag] = int(rng.choice(candidates))
    return Taxonomy(parents, taxonomy.names)


def _with_taxonomy(dataset: InteractionDataset,
                   taxonomy: Taxonomy) -> InteractionDataset:
    """Clone the dataset with a replacement taxonomy + re-extracted
    relations (interactions and Q are untouched)."""
    clone = InteractionDataset(
        user_ids=dataset.user_ids, item_ids=dataset.item_ids,
        timestamps=dataset.timestamps, n_users=dataset.n_users,
        n_items=dataset.n_items, item_tags=dataset.item_tags,
        taxonomy=taxonomy,
        relations=extract_relations(taxonomy, dataset.item_tags),
        name=dataset.name)
    for attr in ("user_focus", "user_focus_level", "user_consistency",
                 "overlapping_pairs"):
        if hasattr(dataset, attr):
            setattr(clone, attr, getattr(dataset, attr))
    return clone


def run_noise_robustness(dataset_name: str = "cd",
                         fractions: Sequence[float] = (0.0, 0.2, 0.5),
                         epochs: Optional[int] = None,
                         seed: int = 0) -> Dict[float, Dict[str, dict]]:
    """Recall/NDCG of LogiRec vs LogiRec++ under taxonomy corruption.

    Returns ``{fraction: {"LogiRec": metrics, "LogiRec++": metrics}}``.
    """
    base = load_dataset(dataset_name)
    rng = np.random.default_rng(seed)
    out: Dict[float, Dict[str, dict]] = {}
    for fraction in fractions:
        if fraction > 0:
            taxonomy = corrupt_taxonomy(base.taxonomy, fraction, rng)
            dataset = _with_taxonomy(base, taxonomy)
        else:
            dataset = base
        split = temporal_split(dataset)
        evaluator = Evaluator(dataset, split)
        config = LogiRecConfig(dim=16, epochs=epochs if epochs else 150,
                               lam=2.0, seed=seed)
        out[fraction] = {}
        for name, cls in (("LogiRec", LogiRec), ("LogiRec++", LogiRecPP)):
            model = cls(dataset.n_users, dataset.n_items, dataset.n_tags,
                        config)
            model.fit(dataset, split, evaluator=evaluator)
            out[fraction][name] = evaluator.evaluate_test(model).means
    return out


def format_robustness_table(results: Dict[float, Dict[str, dict]],
                            metric: str = "recall@10") -> str:
    lines = [f"Taxonomy-corruption robustness ({metric}, %):",
             "corrupted   LogiRec   LogiRec++   mining gain"]
    for fraction in sorted(results):
        plain = results[fraction]["LogiRec"][metric]
        mined = results[fraction]["LogiRec++"][metric]
        lines.append(f"{fraction:8.0%}   {plain:7.2f}   {mined:9.2f}"
                     f"   {mined - plain:+10.2f}")
    return "\n".join(lines)
