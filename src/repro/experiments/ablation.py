"""Ablation study of LogiRec++ (Table III).

Variants map one-to-one onto the paper's list, plus the two extra
ablations DESIGN.md calls out (CON-only / GR-only weighting):

* ``w/o L_Mem``  — membership loss disabled
* ``w/o L_Hie``  — hierarchy loss disabled
* ``w/o L_Ex``   — exclusion loss disabled
* ``w/o HGCN``   — graph convolution disabled (L = 0)
* ``w/o LRM``    — no relation mining, i.e. plain LogiRec
* ``w/o Hyper``  — everything projected to Euclidean space
* ``CON-only`` / ``GR-only`` — one weighting mechanism at a time
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence

from repro.core import LogiRec, LogiRecConfig, LogiRecPP
from repro.data import InteractionDataset


def _variant_model(variant: str, dataset: InteractionDataset,
                   config: LogiRecConfig):
    """Build the model for one ablation variant."""
    if variant == "LogiRec++":
        return LogiRecPP(dataset.n_users, dataset.n_items, dataset.n_tags,
                         config)
    if variant == "w/o L_Mem":
        cfg = replace(config, use_membership=False)
    elif variant == "w/o L_Hie":
        cfg = replace(config, use_hierarchy=False)
    elif variant == "w/o L_Ex":
        cfg = replace(config, use_exclusion=False)
    elif variant == "w/o HGCN":
        cfg = replace(config, n_layers=0)
    elif variant == "w/o Hyper":
        cfg = replace(config, hyperbolic=False)
    elif variant == "CON-only":
        cfg = replace(config, use_granularity=False)
    elif variant == "GR-only":
        cfg = replace(config, use_consistency=False)
    elif variant == "w/o LRM":
        return LogiRec(dataset.n_users, dataset.n_items, dataset.n_tags,
                       config)
    else:
        raise KeyError(f"unknown ablation variant {variant!r}")
    return LogiRecPP(dataset.n_users, dataset.n_items, dataset.n_tags, cfg)


ABLATIONS = ["LogiRec++", "w/o L_Mem", "w/o L_Hie", "w/o L_Ex",
             "w/o HGCN", "w/o LRM", "w/o Hyper", "CON-only", "GR-only"]


def run_ablation(dataset_names: Sequence[str] = ("ciao", "cd"),
                 variants: Optional[Sequence[str]] = None,
                 seed: int = 0, epochs: Optional[int] = None,
                 ks: Sequence[int] = (10, 20)) -> Dict[str, dict]:
    """Table III: evaluate every variant on every dataset.

    .. deprecated:: PR10
        Build an :class:`~repro.experiments.dag.ExperimentSpec` with
        ``kind="ablation"`` and call
        :func:`~repro.experiments.dag.run_experiment` instead.

    Returns ``{dataset: {variant: {metric: value}}}`` (percent).
    """
    import warnings
    warnings.warn(
        "run_ablation(...) is deprecated; use "
        "ExperimentSpec(kind='ablation', ...) with run_experiment()",
        DeprecationWarning, stacklevel=2)
    from repro.experiments.dag import ExperimentSpec, run_experiment
    spec = ExperimentSpec(
        kind="ablation", datasets=tuple(dataset_names),
        variants=tuple(variants) if variants else (),
        seeds=(int(seed),), epochs=epochs, ks=tuple(ks))
    return run_experiment(spec).ablation()


def format_ablation_table(results: Dict[str, dict]) -> str:
    """Render Table III style rows."""
    lines = []
    for ds_name, variants in results.items():
        lines.append(f"=== {ds_name} ===")
        metrics = sorted(next(iter(variants.values())))
        lines.append("variant".ljust(12)
                     + "".join(m.rjust(12) for m in metrics))
        for variant, store in variants.items():
            cells = "".join(f"{store[m]:10.2f}".rjust(12) for m in metrics)
            lines.append(variant.ljust(12) + cells)
        lines.append("")
    return "\n".join(lines)
