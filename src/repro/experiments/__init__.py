"""Experiment harness: model zoo, runners, and table/figure generators.

Each module regenerates one artifact of the paper's evaluation:

* :mod:`repro.experiments.runner` — the model zoo (15 models with tuned
  configs) and the overall comparison (Table II);
* :mod:`repro.experiments.ablation` — the LogiRec++ variants (Table III);
* :mod:`repro.experiments.sweeps` — hyperparameter studies (Table IV,
  Fig. 6);
* :mod:`repro.experiments.figures` — user-behaviour statistics (Fig. 5)
  and embedding visualizations / separation scores (Fig. 7-8);
* :mod:`repro.experiments.cases` — tag-based user profiles with CON/GR/
  alpha (Table V).

Since PR 10 every runner is a thin wrapper over the resumable DAG in
:mod:`repro.experiments.dag`: declare an :class:`ExperimentSpec`, call
:func:`run_experiment`, and get an :class:`ExperimentResult` whose
accessors reproduce each table.  The legacy ``run_*`` signatures remain
as :class:`DeprecationWarning` shims forwarding through the same path.
"""

from repro.experiments.dag import (
    CacheStats,
    ExperimentError,
    ExperimentGraph,
    ExperimentResult,
    ExperimentSpec,
    ResultStore,
    SpecError,
    clean_experiment,
    compile_spec,
    experiment_status,
    load_experiment,
    run_experiment,
)
from repro.experiments.runner import (
    MODEL_ZOO,
    build_model,
    run_model,
    run_comparison,
    format_comparison_table,
)
from repro.experiments.ablation import ABLATIONS, run_ablation
from repro.experiments.sweeps import (
    run_hyperparameter_study,
    run_lambda_sweep,
)
from repro.experiments.figures import (
    user_tag_type_distribution,
    tag_types_vs_origin_distance,
    embedding_projection,
    tag_separation_scores,
)
from repro.experiments.cases import case_rows, case_studies
from repro.experiments.search import format_search_trace, grid_search
from repro.experiments.robustness import (
    corrupt_taxonomy,
    format_robustness_table,
    run_noise_robustness,
)

__all__ = [
    "CacheStats",
    "ExperimentError",
    "ExperimentGraph",
    "ExperimentResult",
    "ExperimentSpec",
    "ResultStore",
    "SpecError",
    "clean_experiment",
    "compile_spec",
    "experiment_status",
    "load_experiment",
    "run_experiment",
    "case_rows",
    "MODEL_ZOO",
    "build_model",
    "run_model",
    "run_comparison",
    "format_comparison_table",
    "ABLATIONS",
    "run_ablation",
    "run_hyperparameter_study",
    "run_lambda_sweep",
    "user_tag_type_distribution",
    "tag_types_vs_origin_distance",
    "embedding_projection",
    "tag_separation_scores",
    "case_studies",
    "corrupt_taxonomy",
    "run_noise_robustness",
    "format_robustness_table",
    "grid_search",
    "format_search_trace",
]
