"""Model zoo and the overall comparison runner (Table II).

The zoo maps each paper model name to a factory with per-family tuned
hyperparameters (tuned once on validation data, like the paper's grid
search).  ``run_comparison`` trains every requested model on every
requested dataset over multiple seeds and reports mean +- std of
Recall/NDCG@{10,20} in percent — the exact shape of Table II, including
the Wilcoxon ``*`` of LogiRec++ over the best baseline.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core import LogiRec, LogiRecConfig, LogiRecPP
from repro.data import InteractionDataset
from repro.data.dataset import Split
from repro.eval import Evaluator, wilcoxon_improvement
from repro.models import (AGCN, AMF, BPRMF, CML, CMLF, GDCF, HGCF, HRCF,
                          HyperML, LightGCN, NeuMF, SML, TrainConfig,
                          TransC)

# Per-dataset λ, following the paper's guidance: tag-rich datasets
# (clothing, book) want a stronger logical regularizer.
LAMBDA_BY_DATASET = {"ciao": 10.0, "cd": 5.0, "clothing": 5.0,
                     "book": 10.0}
# Graph depth L per dataset (validation-tuned; clothing's tag signal is
# strong enough that deep propagation over-smooths it).
LAYERS_BY_DATASET = {"ciao": 3, "cd": 3, "clothing": 1, "book": 2}

# Training budgets tuned per optimizer family (validation data, once).
_EUC = dict(dim=16, epochs=100, batch_size=4096, lr=0.01)
_MET = dict(dim=16, epochs=150, batch_size=4096, lr=0.05, margin=1.0,
            n_negatives=2)
# Hyperbolic models use tangent-space parameterization + Adam (see
# repro.core.logirec docstring); RSGD over manifold parameters remains
# available via parameterization="manifold" and is covered by the
# optimizer-ablation bench.
_HYP = dict(dim=16, epochs=300, batch_size=4096, lr=0.005, margin=2.0,
            n_negatives=2)


def _train_cfg(seed: int, **kw) -> TrainConfig:
    return TrainConfig(seed=seed, **kw)


def _logi_cfg(seed: int, dataset_name: str, **overrides) -> LogiRecConfig:
    lam = LAMBDA_BY_DATASET.get(dataset_name, 1.0)
    n_layers = LAYERS_BY_DATASET.get(dataset_name, 3)
    base = LogiRecConfig(dim=16, epochs=300, batch_size=4096, lr=0.01,
                         margin=0.5, n_negatives=2, lam=lam,
                         n_layers=n_layers, seed=seed)
    return replace(base, **overrides) if overrides else base


MODEL_ZOO: Dict[str, Callable] = {
    "BPRMF": lambda ds, seed: BPRMF(ds.n_users, ds.n_items,
                                    _train_cfg(seed, **_EUC)),
    "NeuMF": lambda ds, seed: NeuMF(ds.n_users, ds.n_items,
                                    _train_cfg(seed, **{**_EUC,
                                                        "epochs": 60})),
    "CML": lambda ds, seed: CML(ds.n_users, ds.n_items,
                                _train_cfg(seed, **_MET)),
    "SML": lambda ds, seed: SML(ds.n_users, ds.n_items,
                                _train_cfg(seed, **_MET)),
    "HyperML": lambda ds, seed: HyperML(ds.n_users, ds.n_items,
                                        _train_cfg(seed, **_HYP)),
    "CMLF": lambda ds, seed: CMLF(ds.n_users, ds.n_items, ds.n_tags,
                                  _train_cfg(seed, **_MET)),
    "AMF": lambda ds, seed: AMF(ds.n_users, ds.n_items, ds.n_tags,
                                _train_cfg(seed, **_EUC)),
    "TransC": lambda ds, seed: TransC(ds.n_users, ds.n_items, ds.n_tags,
                                      _train_cfg(seed, **{**_MET,
                                                          "lr": 0.01})),
    "AGCN": lambda ds, seed: AGCN(ds.n_users, ds.n_items, ds.n_tags,
                                  _train_cfg(seed, **_EUC)),
    "LightGCN": lambda ds, seed: LightGCN(ds.n_users, ds.n_items,
                                          _train_cfg(seed, **_EUC)),
    "HGCF": lambda ds, seed: HGCF(ds.n_users, ds.n_items,
                                  _train_cfg(seed, **_HYP)),
    "GDCF": lambda ds, seed: GDCF(ds.n_users, ds.n_items,
                                  _train_cfg(seed, **_HYP)),
    "HRCF": lambda ds, seed: HRCF(ds.n_users, ds.n_items,
                                  _train_cfg(seed, **_HYP)),
    "LogiRec": lambda ds, seed: LogiRec(
        ds.n_users, ds.n_items, ds.n_tags, _logi_cfg(seed, ds.name)),
    "LogiRec++": lambda ds, seed: LogiRecPP(
        ds.n_users, ds.n_items, ds.n_tags, _logi_cfg(seed, ds.name)),
}

BASELINE_NAMES = [n for n in MODEL_ZOO if not n.startswith("LogiRec")]
ALL_MODEL_NAMES = list(MODEL_ZOO)


def build_model(name: str, dataset: InteractionDataset, seed: int = 0):
    """Instantiate a zoo model for the given dataset."""
    if name not in MODEL_ZOO:
        raise KeyError(f"unknown model {name!r}; available: "
                       f"{ALL_MODEL_NAMES}")
    return MODEL_ZOO[name](dataset, seed)


def run_model(name: str, dataset: InteractionDataset, split: Split,
              seed: int = 0, ks: Sequence[int] = (10, 20)):
    """Train one zoo model and return its test :class:`EvaluationResult`."""
    model = build_model(name, dataset, seed)
    evaluator = Evaluator(dataset, split, ks=ks)
    model.fit(dataset, split, evaluator=evaluator)
    return evaluator.evaluate_test(model)


def run_comparison(model_names: Optional[Iterable[str]] = None,
                   dataset_names: Sequence[str] = ("ciao", "cd"),
                   seeds: Sequence[int] = (0,),
                   ks: Sequence[int] = (10, 20),
                   epochs_override: Optional[int] = None) -> dict:
    """Table II: every model on every dataset over seeds.

    .. deprecated:: PR10
        Build an :class:`~repro.experiments.dag.ExperimentSpec` with
        ``kind="comparison"`` and call
        :func:`~repro.experiments.dag.run_experiment` instead; this shim
        forwards through the same spec→graph→scheduler path and rebuilds
        the legacy return shape.

    Returns ``{dataset: {model: {metric: (mean, std)}}}`` plus per-user
    vectors of the last seed for significance testing under the key
    ``"_per_user"``.
    """
    import warnings
    warnings.warn(
        "run_comparison(model_names=..., dataset_names=...) is "
        "deprecated; use ExperimentSpec(kind='comparison', ...) with "
        "run_experiment()", DeprecationWarning, stacklevel=2)
    from repro.experiments.dag import ExperimentSpec, run_experiment
    spec = ExperimentSpec(
        kind="comparison",
        models=tuple(model_names) if model_names else (),
        datasets=tuple(dataset_names), seeds=tuple(seeds),
        ks=tuple(ks), epochs=epochs_override)
    return run_experiment(spec).comparison()



def significance_vs_best_baseline(per_user: dict,
                                  metric: str = "recall@10") -> dict:
    """Wilcoxon test of LogiRec++ against the best baseline per metric."""
    baselines = {k: v for k, v in per_user.items()
                 if not k.startswith("LogiRec")}
    if "LogiRec++" not in per_user or not baselines:
        return {}
    best_name = max(baselines,
                    key=lambda k: float(np.mean(baselines[k][metric])))
    significant, p = wilcoxon_improvement(
        per_user["LogiRec++"][metric], per_user[best_name][metric])
    return {"best_baseline": best_name, "significant": significant,
            "p_value": p}


def format_comparison_table(results: dict,
                            ks: Sequence[int] = (10, 20)) -> str:
    """Render Table II rows: ``model  recall@10 .. ndcg@20`` per dataset."""
    metrics = [f"recall@{k}" for k in ks] + [f"ndcg@{k}" for k in ks]
    lines: List[str] = []
    for ds_name, models in results.items():
        lines.append(f"=== {ds_name} ===")
        header = "model".ljust(12) + "".join(m.rjust(16) for m in metrics)
        lines.append(header)
        for model_name, store in models.items():
            if model_name == "_per_user":
                continue
            cells = []
            for metric in metrics:
                mean, std = store[metric]
                cells.append(f"{mean:6.2f}±{std:4.2f}".rjust(16))
            lines.append(model_name.ljust(12) + "".join(cells))
        sig = significance_vs_best_baseline(models.get("_per_user", {}))
        if sig:
            star = "*" if sig["significant"] else ""
            lines.append(f"LogiRec++ vs {sig['best_baseline']}: "
                         f"p={sig['p_value']:.4f} {star}")
        lines.append("")
    return "\n".join(lines)
