"""Validation-based grid search (the paper's Section VI-A4 protocol).

The paper tunes every model "through grid search ... on validation data".
:func:`grid_search` reproduces that protocol for any zoo model or config
factory: train each combination, score it on the *validation* split, and
return the best configuration plus the full trace — test data is never
touched during the search.
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.data.dataset import InteractionDataset, Split
from repro.eval import Evaluator


def grid_search(model_factory: Callable, base_config,
                grid: Dict[str, Iterable],
                dataset: InteractionDataset, split: Split,
                metric: str = "recall@10",
                evaluator: Optional[Evaluator] = None
                ) -> Tuple[object, List[dict]]:
    """Exhaustive grid search over config fields.

    Parameters
    ----------
    model_factory:
        ``factory(config) -> Recommender`` (untrained).
    base_config:
        A dataclass config; each grid combination is applied with
        ``dataclasses.replace``.
    grid:
        ``{field: iterable of values}``.
    dataset, split:
        Training data; selection uses the *validation* part only.
    metric:
        Validation metric to maximize.

    Returns
    -------
    (best_config, trace):
        ``trace`` is a list of ``{"params", "score"}`` dicts in
        evaluation order.
    """
    if not grid:
        raise ValueError("grid must contain at least one field")
    evaluator = evaluator if evaluator is not None else Evaluator(
        dataset, split)
    fields = list(grid)
    trace: List[dict] = []
    best_score = -float("inf")
    best_config = base_config
    for values in itertools.product(*(grid[f] for f in fields)):
        params = dict(zip(fields, values))
        config = replace(base_config, **params)
        model = model_factory(config)
        model.fit(dataset, split, evaluator=evaluator)
        score = evaluator.evaluate_valid(model).means[metric]
        trace.append({"params": params, "score": score})
        if score > best_score:
            best_score = score
            best_config = config
    return best_config, trace


def format_search_trace(trace: List[dict],
                        metric: str = "recall@10") -> str:
    """Human-readable grid-search trace, best first."""
    ordered = sorted(trace, key=lambda row: -row["score"])
    lines = [f"grid search trace (validation {metric}, %):"]
    for row in ordered:
        params = " ".join(f"{k}={v}" for k, v in row["params"].items())
        lines.append(f"  {row['score']:6.2f}  {params}")
    return "\n".join(lines)
