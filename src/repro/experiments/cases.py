"""Interpretable case studies (Table V).

For selected users of a trained LogiRec++ model, reports the paper's
triple (CON, GR, alpha), the user's tag profile (tags of interacted
items, most-specific first), and the model's top-K recommendations with
their tags — the machine-readable version of Table V's rows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.logirec_pp import LogiRecPP
from repro.data import InteractionDataset
from repro.data.dataset import Split


def case_studies(model: LogiRecPP, dataset: InteractionDataset,
                 split: Split, user_ids: Optional[Sequence[int]] = None,
                 top_k: int = 6, max_tags: int = 5) -> List[Dict]:
    """Build Table V rows.

    .. deprecated:: PR10
        Use :func:`case_rows` directly, or run a full cases section via
        :class:`~repro.experiments.dag.ExperimentSpec` with
        ``kind="cases"`` and :func:`~repro.experiments.dag.run_experiment`
        (which trains the paper's LogiRec++ config and caches the rows).
    """
    import warnings
    warnings.warn(
        "case_studies(...) is deprecated; use case_rows(...) or an "
        "ExperimentSpec(kind='cases', ...) with run_experiment()",
        DeprecationWarning, stacklevel=2)
    return case_rows(model, dataset, split, user_ids=user_ids,
                     top_k=top_k, max_tags=max_tags)


def case_rows(model: LogiRecPP, dataset: InteractionDataset,
              split: Split, user_ids: Optional[Sequence[int]] = None,
              top_k: int = 6, max_tags: int = 5) -> List[Dict]:
    """Table V rows for a trained LogiRec++ model.

    If ``user_ids`` is omitted, picks four contrasting users: highest /
    lowest CON and highest / lowest GR among evaluable users — the same
    contrast the paper's Table V stages.
    """
    weights = model.user_weights()
    train_items = dataset.items_of_user(split.train)
    evaluable = np.array(sorted(u for u, items in train_items.items()
                                if len(items) >= 3))
    if user_ids is None:
        con = weights["con"][evaluable]
        gr = weights["gr"][evaluable]
        picks = [evaluable[int(np.argmax(con))],
                 evaluable[int(np.argmin(con))],
                 evaluable[int(np.argmax(gr))],
                 evaluable[int(np.argmin(gr))]]
        # Deduplicate while preserving order.
        user_ids = list(dict.fromkeys(int(u) for u in picks))

    taxonomy = dataset.taxonomy
    rows: List[Dict] = []
    for u in user_ids:
        seen = train_items.get(u, np.zeros(0, dtype=np.int64))
        profile_tags = _tag_profile(dataset, seen, max_tags)
        recs = model.recommend(u, k=top_k, exclude=seen)
        rec_tags = _tag_profile(dataset, recs, max_tags)
        rows.append({
            "user": int(u),
            "con": float(weights["con"][u]),
            "gr": float(weights["gr"][u]),
            "alpha": float(weights["alpha"][u]),
            "profile_tags": [taxonomy.names[t] for t in profile_tags],
            "recommended_items": [int(i) for i in recs],
            "recommended_tags": [taxonomy.names[t] for t in rec_tags],
        })
    return rows


def _tag_profile(dataset: InteractionDataset, items: np.ndarray,
                 max_tags: int) -> List[int]:
    """Most frequent tags among the items, deepest (most specific) first
    among ties."""
    if len(items) == 0:
        return []
    tag_arrays = dataset.tags_of_items(np.asarray(items))
    all_tags = np.concatenate([a for a in tag_arrays if len(a)]) if any(
        len(a) for a in tag_arrays) else np.zeros(0, dtype=np.int64)
    if len(all_tags) == 0:
        return []
    tags, counts = np.unique(all_tags, return_counts=True)
    depth = dataset.taxonomy.levels[tags]
    order = np.lexsort((-depth, -counts))
    return [int(t) for t in tags[order][:max_tags]]


def format_case_table(rows: List[Dict]) -> str:
    """Render Table V style text."""
    lines = []
    for row in rows:
        lines.append(f"User {row['user']}: CON={row['con']:.2f} "
                     f"GR={row['gr']:.2f} alpha={row['alpha']:.2f}")
        lines.append("  profile tags: " + "; ".join(row["profile_tags"]))
        lines.append("  recommended tags: "
                     + "; ".join(row["recommended_tags"]))
        lines.append("  recommended items: "
                     + ", ".join(map(str, row["recommended_items"])))
    return "\n".join(lines)
