"""``repro.experiments.dag`` — resumable experiment orchestration.

One schema in (:class:`ExperimentSpec`), one schema out
(:class:`ExperimentResult`): a spec compiles to a DAG of cacheable
nodes (:mod:`~repro.experiments.dag.graph`), a process-pool scheduler
(:mod:`~repro.experiments.dag.scheduler`) executes the incomplete ones
against a config-hash-keyed result store
(:mod:`~repro.experiments.dag.store`), and section aggregates
(:mod:`~repro.experiments.dag.results`) reproduce the paper's tables.
See DESIGN.md §14.
"""

from repro.experiments.dag.api import (clean_experiment,
                                       experiment_status,
                                       load_experiment, run_experiment)
from repro.experiments.dag.executor import ExperimentError, execute_node
from repro.experiments.dag.graph import (ExperimentGraph, Node,
                                         compile_spec)
from repro.experiments.dag.results import (ExperimentResult,
                                           aggregate_section)
from repro.experiments.dag.scheduler import run_graph
from repro.experiments.dag.spec import (ALL_DATASETS, SPEC_KINDS,
                                        ExperimentSpec, SpecError,
                                        canonical_json, digest)
from repro.experiments.dag.store import CacheStats, ResultStore

__all__ = [
    "ALL_DATASETS",
    "SPEC_KINDS",
    "CacheStats",
    "ExperimentError",
    "ExperimentGraph",
    "ExperimentResult",
    "ExperimentSpec",
    "Node",
    "ResultStore",
    "SpecError",
    "aggregate_section",
    "canonical_json",
    "clean_experiment",
    "compile_spec",
    "digest",
    "execute_node",
    "experiment_status",
    "load_experiment",
    "run_experiment",
    "run_graph",
]
