"""Compile an :class:`ExperimentSpec` into a DAG of cacheable nodes.

Node kinds
----------
``dataset``
    Build (and for robustness, corrupt) one dataset realization and
    record its statistics.  Workers regenerate datasets in-process from
    the same payload — the registry is deterministic — so only the
    stats record crosses process boundaries.
``train``
    Train one model configuration and persist it in the PR4 checkpoint
    format under the node's cache directory, supervised by
    :class:`repro.robust.TrainingSupervisor` so a killed run resumes
    from its auto-checkpoint bit-identically.
``eval``
    Load the checkpointed model and compute per-user Recall/NDCG
    vectors on the test split.
``cases``
    Table-V rows from a trained LogiRec++ checkpoint.
``aggregate``
    Reduce every evaluation of one experiment section into the typed
    result record (means ± std, significance, tables).  Always executed
    in the parent process.

Keys
----
``node.key`` is ``"<kind>-" + sha256(kind, payload, dep keys)[:12]`` —
a pure function of everything that determines the node's result.  Two
specs that share work (e.g. the grid's comparison and ablation sections
both training LogiRec++ on cd with the same budget) compile to nodes
with equal keys, and the scheduler runs the work once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.dag.spec import ExperimentSpec, digest

NODE_KINDS = ("dataset", "train", "eval", "cases", "aggregate")


@dataclass(frozen=True)
class Node:
    """One cacheable unit of work."""

    kind: str
    label: str                      # human-readable, e.g. train:BPRMF:cd:s0
    payload: Dict[str, object]      # JSON-safe; fully determines the result
    deps: Tuple[str, ...] = ()      # keys of prerequisite nodes
    key: str = field(default="", compare=False)

    def __post_init__(self):
        if self.kind not in NODE_KINDS:
            raise ValueError(f"unknown node kind {self.kind!r}")
        if not self.key:
            body = {"kind": self.kind, "payload": self.payload,
                    "deps": sorted(self.deps)}
            object.__setattr__(self, "key",
                               f"{self.kind}-{digest(body)}")

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "label": self.label,
                "payload": self.payload, "deps": list(self.deps),
                "key": self.key}

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "Node":
        return cls(kind=record["kind"], label=record["label"],
                   payload=record["payload"],
                   deps=tuple(record["deps"]), key=record["key"])


class ExperimentGraph:
    """Nodes keyed by config hash, deduplicated, topologically ordered."""

    def __init__(self):
        self.nodes: Dict[str, Node] = {}
        #: aggregate-node key per section kind (a grid has several).
        self.sections: Dict[str, str] = {}

    def add(self, node: Node) -> Node:
        """Insert (or return the existing identical) node."""
        existing = self.nodes.get(node.key)
        if existing is not None:
            return existing
        for dep in node.deps:
            if dep not in self.nodes:
                raise ValueError(f"node {node.label} depends on unknown "
                                 f"node key {dep}")
        self.nodes[node.key] = node
        return node

    def __len__(self) -> int:
        return len(self.nodes)

    def topo_order(self) -> List[str]:
        """Deterministic topological order (insertion-stable)."""
        order: List[str] = []
        done = set()
        # Insertion order already respects dependencies (add() rejects
        # forward references), so one pass suffices; assert anyway.
        for key, node in self.nodes.items():
            missing = [d for d in node.deps if d not in done]
            if missing:
                raise ValueError(f"cycle or forward reference at "
                                 f"{node.label}: {missing}")
            order.append(key)
            done.add(key)
        return order

    def by_kind(self, kind: str) -> List[Node]:
        return [n for n in self.nodes.values() if n.kind == kind]


# ----------------------------------------------------------------------
# Spec -> graph compilation
# ----------------------------------------------------------------------
def _dataset_node(graph: ExperimentGraph, name: str, scale: float,
                  fraction: float = 0.0, corrupt_seed: int = 0) -> Node:
    payload = {"name": name, "scale": scale}
    label = f"dataset:{name}"
    if fraction > 0.0:
        payload.update({"fraction": fraction,
                        "corrupt_seed": int(corrupt_seed)})
        label += f":f{fraction:g}"
    return graph.add(Node("dataset", label, payload))


def _train_node(graph: ExperimentGraph, ds_node: Node, *, builder: str,
                label: str, backend: str, seed: int,
                epochs: Optional[int], ks: Tuple[int, ...],
                **extra) -> Node:
    payload = {"builder": builder, "dataset": ds_node.payload,
               "seed": int(seed), "epochs": epochs, "ks": list(ks),
               "backend": backend}
    payload.update(extra)
    return graph.add(Node("train", label, payload, deps=(ds_node.key,)))


def _eval_node(graph: ExperimentGraph, ds_node: Node, train: Node,
               ks: Tuple[int, ...], backend: str, **meta) -> Node:
    payload = {"dataset": ds_node.payload, "train": train.key,
               "ks": list(ks), "backend": backend}
    payload.update(meta)
    label = "eval:" + train.label.split(":", 1)[1]
    return graph.add(Node("eval", label, payload,
                          deps=(ds_node.key, train.key)))


def _aggregate_node(graph: ExperimentGraph, section: str,
                    entries: List[Dict[str, object]],
                    meta: Dict[str, object]) -> Node:
    deps = tuple(dict.fromkeys(e["key"] for e in entries))
    payload = {"section": section, "entries": entries, "meta": meta}
    node = graph.add(Node("aggregate", f"aggregate:{section}", payload,
                          deps=deps))
    graph.sections[section] = node.key
    return node


def compile_spec(spec: ExperimentSpec) -> ExperimentGraph:
    """Compile the spec into its node graph (shared nodes deduplicated)."""
    graph = ExperimentGraph()
    if spec.kind == "grid":
        for section in _grid_sections(spec):
            _compile_section(section, graph)
    else:
        _compile_section(spec, graph)
    return graph


def _grid_sections(spec: ExperimentSpec) -> List[ExperimentSpec]:
    """The full paper grid: one section spec per table/figure."""
    common = dict(seeds=spec.seeds, ks=spec.ks, epochs=spec.epochs,
                  backend=spec.backend, scale=spec.scale)
    narrow = tuple(d for d in ("ciao", "cd") if d in spec.datasets) \
        or spec.datasets[:1]
    single = ("cd",) if "cd" in spec.datasets else spec.datasets[:1]
    return [
        ExperimentSpec(kind="comparison", datasets=spec.datasets,
                       models=spec.models, **common),
        ExperimentSpec(kind="ablation", datasets=narrow,
                       variants=spec.variants, **common),
        ExperimentSpec(kind="sweep", datasets=single, params=spec.params,
                       **common),
        ExperimentSpec(kind="lambda", datasets=narrow,
                       lambdas=spec.lambdas, baseline=spec.baseline,
                       **common),
        ExperimentSpec(kind="robustness", datasets=single,
                       fractions=spec.fractions, **common),
        ExperimentSpec(kind="cases", datasets=single, **common),
    ]


def _compile_section(spec: ExperimentSpec, graph: ExperimentGraph) -> None:
    build = _SECTION_COMPILERS[spec.kind]
    build(spec, graph)


def _compile_comparison(spec: ExperimentSpec,
                        graph: ExperimentGraph) -> None:
    entries: List[Dict[str, object]] = []
    for ds_name in spec.datasets:
        ds_node = _dataset_node(graph, ds_name, spec.scale)
        for seed in spec.seeds:
            for model in spec.models:
                train = _train_node(
                    graph, ds_node, builder="zoo",
                    label=f"train:{model}:{ds_name}:s{seed}",
                    backend=spec.backend, seed=seed, epochs=spec.epochs,
                    ks=spec.ks, model=model)
                ev = _eval_node(graph, ds_node, train, spec.ks,
                                spec.backend)
                entries.append({"key": ev.key, "dataset": ds_name,
                                "model": model, "seed": seed})
    _aggregate_node(graph, "comparison", entries,
                    {"models": list(spec.models),
                     "datasets": list(spec.datasets),
                     "seeds": list(spec.seeds), "ks": list(spec.ks)})


def _compile_ablation(spec: ExperimentSpec,
                      graph: ExperimentGraph) -> None:
    entries: List[Dict[str, object]] = []
    for ds_name in spec.datasets:
        ds_node = _dataset_node(graph, ds_name, spec.scale)
        for seed in spec.seeds:
            for variant in spec.variants:
                slug = variant.replace(" ", "_").replace("/", "")
                train = _train_node(
                    graph, ds_node, builder="ablation",
                    label=f"train:{slug}:{ds_name}:s{seed}",
                    backend=spec.backend, seed=seed, epochs=spec.epochs,
                    ks=spec.ks, variant=variant)
                ev = _eval_node(graph, ds_node, train, spec.ks,
                                spec.backend)
                entries.append({"key": ev.key, "dataset": ds_name,
                                "variant": variant, "seed": seed})
    _aggregate_node(graph, "ablation", entries,
                    {"variants": list(spec.variants),
                     "datasets": list(spec.datasets),
                     "seeds": list(spec.seeds)})


def _compile_sweep(spec: ExperimentSpec, graph: ExperimentGraph) -> None:
    from repro.experiments.sweeps import HYPERPARAM_GRID
    seed = spec.seeds[0]
    entries: List[Dict[str, object]] = []
    for ds_name in spec.datasets:
        ds_node = _dataset_node(graph, ds_name, spec.scale)
        for param in spec.params:
            for value in HYPERPARAM_GRID[param]:
                train = _train_node(
                    graph, ds_node, builder="sweep",
                    label=f"train:sweep_{param}={value:g}:{ds_name}"
                          f":s{seed}",
                    backend=spec.backend, seed=seed, epochs=spec.epochs,
                    ks=spec.ks, param=param, value=value)
                ev = _eval_node(graph, ds_node, train, spec.ks,
                                spec.backend)
                entries.append({"key": ev.key, "dataset": ds_name,
                                "param": param, "value": value,
                                "seed": seed})
    _aggregate_node(graph, "sweep", entries,
                    {"params": list(spec.params),
                     "datasets": list(spec.datasets)})


def _compile_lambda(spec: ExperimentSpec, graph: ExperimentGraph) -> None:
    seed = spec.seeds[0]
    entries: List[Dict[str, object]] = []
    for ds_name in spec.datasets:
        ds_node = _dataset_node(graph, ds_name, spec.scale)
        base = _train_node(
            graph, ds_node, builder="zoo",
            label=f"train:{spec.baseline}:{ds_name}:s{seed}",
            backend=spec.backend, seed=seed, epochs=spec.epochs,
            ks=spec.ks, model=spec.baseline)
        ev = _eval_node(graph, ds_node, base, spec.ks, spec.backend)
        entries.append({"key": ev.key, "dataset": ds_name,
                        "role": "baseline", "model": spec.baseline,
                        "seed": seed})
        for lam in spec.lambdas:
            train = _train_node(
                graph, ds_node, builder="sweep",
                label=f"train:sweep_lam={lam:g}:{ds_name}:s{seed}",
                backend=spec.backend, seed=seed, epochs=spec.epochs,
                ks=spec.ks, param="lam", value=lam)
            ev = _eval_node(graph, ds_node, train, spec.ks, spec.backend)
            entries.append({"key": ev.key, "dataset": ds_name,
                            "role": "series", "lam": lam, "seed": seed})
    _aggregate_node(graph, "lambda", entries,
                    {"baseline": spec.baseline,
                     "lambdas": list(spec.lambdas),
                     "datasets": list(spec.datasets)})


def _compile_robustness(spec: ExperimentSpec,
                        graph: ExperimentGraph) -> None:
    seed = spec.seeds[0]
    entries: List[Dict[str, object]] = []
    ds_name = spec.datasets[0]
    for fraction in spec.fractions:
        ds_node = _dataset_node(graph, ds_name, spec.scale,
                                fraction=fraction, corrupt_seed=seed)
        for model in ("LogiRec", "LogiRec++"):
            slug = model.replace("+", "p")
            suffix = f":f{fraction:g}" if fraction > 0 else ""
            train = _train_node(
                graph, ds_node, builder="robustness",
                label=f"train:{slug}:{ds_name}{suffix}:s{seed}",
                backend=spec.backend, seed=seed, epochs=spec.epochs,
                ks=spec.ks, model=model)
            ev = _eval_node(graph, ds_node, train, spec.ks, spec.backend)
            entries.append({"key": ev.key, "dataset": ds_name,
                            "model": model, "fraction": fraction,
                            "seed": seed})
    _aggregate_node(graph, "robustness", entries,
                    {"dataset": ds_name,
                     "fractions": list(spec.fractions)})


def _compile_cases(spec: ExperimentSpec, graph: ExperimentGraph) -> None:
    seed = spec.seeds[0]
    entries: List[Dict[str, object]] = []
    for ds_name in spec.datasets:
        ds_node = _dataset_node(graph, ds_name, spec.scale)
        train = _train_node(
            graph, ds_node, builder="cases",
            label=f"train:cases:{ds_name}:s{seed}",
            backend=spec.backend, seed=seed, epochs=spec.epochs,
            ks=spec.ks)
        case = graph.add(Node(
            "cases", f"cases:{ds_name}:s{seed}",
            {"dataset": ds_node.payload, "train": train.key,
             "top_k": 6, "max_tags": 5, "backend": spec.backend},
            deps=(ds_node.key, train.key)))
        entries.append({"key": case.key, "dataset": ds_name,
                        "seed": seed})
    _aggregate_node(graph, "cases", entries,
                    {"datasets": list(spec.datasets)})


_SECTION_COMPILERS = {
    "comparison": _compile_comparison,
    "ablation": _compile_ablation,
    "sweep": _compile_sweep,
    "lambda": _compile_lambda,
    "robustness": _compile_robustness,
    "cases": _compile_cases,
}
