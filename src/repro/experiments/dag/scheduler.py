"""Cache-aware DAG scheduler over a ``concurrent.futures`` process pool.

Execution policy:

* A node whose ``result.json`` already exists under the store is a cache
  hit — skipped entirely, counted in :class:`CacheStats`.
* ``aggregate`` nodes always run in the parent process (they are cheap
  reductions over already-persisted results).
* With ``workers <= 1`` or an in-memory store, every node runs inline in
  the parent — this is also the only mode that honors ``fault_plans``
  (injected kills must hit a process whose lifetime the test controls).
* Otherwise ready nodes are dispatched to a ``ProcessPoolExecutor``
  wave by wave; each worker re-selects the tensor backend and quiesces
  inherited telemetry via :func:`repro.experiments.dag.executor.pool_initializer`.

Every node emits an obs span (inline) or trace event (pool/cached), so
a run's cost decomposes per node kind in the telemetry tree.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro import obs
from repro.experiments.dag.executor import (ExperimentError, execute_node,
                                            pool_execute,
                                            pool_initializer)
from repro.experiments.dag.graph import ExperimentGraph, Node
from repro.experiments.dag.store import CacheStats, ResultStore


def _run_inline(node: Node, store: ResultStore, fault_plan) -> dict:
    with obs.trace("exp.node", kind=node.kind, label=node.label):
        try:
            return execute_node(node, store, fault_plan=fault_plan)
        except ExperimentError:
            raise
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            raise ExperimentError(node.label, exc) from exc


def run_graph(graph: ExperimentGraph, store: ResultStore, *,
              workers: int = 0, backend: Optional[str] = None,
              fault_plans: Optional[Dict[str, object]] = None,
              ) -> CacheStats:
    """Execute every incomplete node of the graph; returns cache stats.

    ``fault_plans`` maps node labels to :class:`repro.robust.FaultPlan`
    instances (tests only; inline mode only).
    """
    fault_plans = fault_plans or {}
    stats = CacheStats()
    order = graph.topo_order()
    pool_mode = workers > 1 and store.persistent

    todo = []
    for key in order:
        node = graph.nodes[key]
        if store.has(key):
            stats.record(node.kind, cached=True)
            obs.count("exp/cache_hit")
            obs.trace_event("exp.node.cached", kind=node.kind,
                            label=node.label, key=key)
        else:
            todo.append(key)

    if not pool_mode:
        for key in todo:
            node = graph.nodes[key]
            result = _run_inline(node, store,
                                 fault_plans.get(node.label))
            store.save(key, result)
            stats.record(node.kind, cached=False)
            obs.count("exp/node_executed")
        return stats

    from concurrent.futures import (FIRST_COMPLETED, ProcessPoolExecutor,
                                    wait)
    done = set(order) - set(todo)
    pending = list(todo)
    with ProcessPoolExecutor(max_workers=workers,
                             initializer=pool_initializer,
                             initargs=(backend,)) as pool:
        in_flight = {}
        while pending or in_flight:
            # Dispatch every node whose dependencies are satisfied.
            still_blocked = []
            for key in pending:
                node = graph.nodes[key]
                if any(dep not in done for dep in node.deps):
                    still_blocked.append(key)
                    continue
                if node.kind == "aggregate":
                    # Cheap parent-side reduction over stored results.
                    result = _run_inline(node, store, None)
                    store.save(key, result)
                    stats.record(node.kind, cached=False)
                    obs.count("exp/node_executed")
                    done.add(key)
                    continue
                future = pool.submit(pool_execute, node.to_dict(),
                                     str(store.root), backend)
                in_flight[future] = key
                obs.trace_event("exp.node.dispatched", kind=node.kind,
                                label=node.label, key=key)
            made_progress = len(still_blocked) < len(pending)
            pending = still_blocked
            if not in_flight:
                if pending and not made_progress:
                    raise ExperimentError(
                        graph.nodes[pending[0]].label,
                        RuntimeError("unsatisfiable dependencies"))
                continue
            finished, _ = wait(list(in_flight),
                               return_when=FIRST_COMPLETED)
            for future in finished:
                key = in_flight.pop(future)
                node = graph.nodes[key]
                try:
                    _, result = future.result()
                except BaseException as exc:
                    if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                        raise
                    raise ExperimentError(node.label, exc) from exc
                store.save(key, result)
                stats.record(node.kind, cached=False)
                obs.count("exp/node_executed")
                obs.trace_event("exp.node.completed", kind=node.kind,
                                label=node.label, key=key)
                done.add(key)
    return stats
