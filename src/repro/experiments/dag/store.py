"""Persistent (or in-memory) node-result store with cache accounting.

Disk layout under the workdir::

    <root>/specs/<spec_hash>.json     # every spec ever run here
    <root>/nodes/<node_key>/result.json   # completion marker + result
    <root>/nodes/<node_key>/ck/           # train: supervisor auto-ckpt
    <root>/nodes/<node_key>/final/        # train: final PR4 checkpoint

``result.json`` is written atomically (temp file + ``os.replace``) and
its presence *is* the completion marker: a run killed mid-node leaves
checkpoints but no marker, so the next run re-executes that node — and
the training executor resumes from the auto-checkpoint's ``fit_state``
instead of starting over.

The in-memory store backs the deprecation shims (the legacy entrypoints
were pure functions that wrote nothing); it additionally carries live
model objects between train and eval nodes so nothing is serialized.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.experiments.dag.spec import ExperimentSpec


@dataclass
class CacheStats:
    """Node accounting of one scheduler pass."""

    total: int = 0
    hits: int = 0
    executed: int = 0
    retrained: int = 0      # train nodes actually executed
    by_kind: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def record(self, kind: str, cached: bool) -> None:
        self.total += 1
        slot = self.by_kind.setdefault(kind, {"hits": 0, "executed": 0})
        if cached:
            self.hits += 1
            slot["hits"] += 1
        else:
            self.executed += 1
            slot["executed"] += 1
            if kind == "train":
                self.retrained += 1

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0

    def summary(self) -> str:
        pct = int(round(self.hit_rate * 100))
        return (f"{self.total} node(s): {self.hits} cached ({pct}%), "
                f"{self.executed} executed, {self.retrained} retrain(s)")

    def to_dict(self) -> Dict[str, object]:
        return {"total": self.total, "hits": self.hits,
                "executed": self.executed, "retrained": self.retrained,
                "by_kind": self.by_kind}


class ResultStore:
    """Node results keyed by config hash; disk-backed when ``root`` is
    set, in-memory otherwise."""

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root) if root is not None else None
        self._memory: Dict[str, dict] = {}
        #: live objects (trained models) for in-memory pipelines.
        self.artifacts: Dict[str, object] = {}

    @property
    def persistent(self) -> bool:
        return self.root is not None

    # ------------------------------------------------------------------
    # Node results
    # ------------------------------------------------------------------
    def _result_path(self, key: str) -> Path:
        return self.root / "nodes" / key / "result.json"

    def node_dir(self, key: str) -> Optional[Path]:
        """The node's scratch directory (checkpoints live here)."""
        if not self.persistent:
            return None
        path = self.root / "nodes" / key
        path.mkdir(parents=True, exist_ok=True)
        return path

    def has(self, key: str) -> bool:
        if not self.persistent:
            return key in self._memory
        return self._result_path(key).is_file()

    def load(self, key: str) -> dict:
        if not self.persistent:
            return self._memory[key]
        with open(self._result_path(key)) as fh:
            return json.load(fh)

    def save(self, key: str, result: dict) -> None:
        if not self.persistent:
            self._memory[key] = result
            return
        path = self._result_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name("result.json.tmp")
        with open(tmp, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
        os.replace(tmp, path)

    def remove(self, key: str) -> None:
        if not self.persistent:
            self._memory.pop(key, None)
            self.artifacts.pop(key, None)
            return
        import shutil
        node_dir = self.root / "nodes" / key
        if node_dir.is_dir():
            shutil.rmtree(node_dir)

    # ------------------------------------------------------------------
    # Spec records (what `exp status` inspects with no flags)
    # ------------------------------------------------------------------
    def record_spec(self, spec: ExperimentSpec) -> Optional[Path]:
        if not self.persistent:
            return None
        specs_dir = self.root / "specs"
        specs_dir.mkdir(parents=True, exist_ok=True)
        path = specs_dir / f"{spec.spec_hash()}.json"
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w") as fh:
            json.dump(spec.to_dict(), fh, indent=2, sort_keys=True)
        os.replace(tmp, path)
        return path

    def recorded_specs(self) -> List[ExperimentSpec]:
        """Every spec ever run against this store, newest first."""
        if not self.persistent:
            return []
        specs_dir = self.root / "specs"
        if not specs_dir.is_dir():
            return []
        paths = sorted(specs_dir.glob("*.json"),
                       key=lambda p: p.stat().st_mtime, reverse=True)
        out: List[ExperimentSpec] = []
        for path in paths:
            try:
                out.append(ExperimentSpec.from_file(path))
            except Exception:  # pragma: no cover - hand-edited file
                continue
        return out

    def clear(self) -> int:
        """Delete every node result and spec record; returns node count."""
        if not self.persistent:
            n = len(self._memory)
            self._memory.clear()
            self.artifacts.clear()
            return n
        import shutil
        nodes_dir = self.root / "nodes"
        n = len(list(nodes_dir.iterdir())) if nodes_dir.is_dir() else 0
        for sub in ("nodes", "specs"):
            path = self.root / sub
            if path.is_dir():
                shutil.rmtree(path)
        return n
