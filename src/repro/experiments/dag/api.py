"""Public orchestration API: spec in, :class:`ExperimentResult` out.

``run_experiment`` is the single execution path every entrypoint —
``repro exp run``, the deprecated ``run_comparison``/``run_ablation``/…
shims, and ``scripts/reproduce_all.sh`` — goes through:

    spec → compile_spec → run_graph → aggregate → ExperimentResult

With a ``workdir`` the run is persistent and resumable: node results are
cached under config-hash keys, a rerun of the same spec skips every
completed node, and a killed run picks up from the training supervisor's
auto-checkpoints.  Without one the run is ephemeral (in-memory store,
inline execution) — the mode the deprecation shims use, matching the
legacy entrypoints' statelessness.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro import obs
from repro.experiments.dag.graph import compile_spec
from repro.experiments.dag.results import (ExperimentResult,
                                           aggregate_section)
from repro.experiments.dag.scheduler import run_graph
from repro.experiments.dag.spec import ExperimentSpec
from repro.experiments.dag.store import ResultStore


def run_experiment(spec: ExperimentSpec, *,
                   workdir: Optional[str] = None,
                   store: Optional[ResultStore] = None,
                   workers: int = 0,
                   fault_plans: Optional[Dict[str, object]] = None,
                   ) -> ExperimentResult:
    """Execute (or resume) the experiment a spec describes.

    Parameters
    ----------
    workdir:
        Cache/resume directory.  ``None`` (and no ``store``) runs fully
        in memory with nothing persisted.
    store:
        Pre-built :class:`ResultStore`; overrides ``workdir``.
    workers:
        Process-pool width; ``<= 1`` executes inline in this process.
        Pool workers re-select ``spec.backend`` after fork/spawn.
    fault_plans:
        ``{node_label: FaultPlan}`` for fault-injection tests (inline
        mode only).
    """
    if store is None:
        store = ResultStore(workdir)
    store.record_spec(spec)
    graph = compile_spec(spec)
    with obs.trace("exp.run", kind=spec.kind, spec=spec.spec_hash(),
                   nodes=len(graph), workers=int(workers)):
        stats = run_graph(graph, store, workers=workers,
                          backend=spec.backend, fault_plans=fault_plans)
        sections = {section: store.load(key)
                    for section, key in graph.sections.items()}
    obs.trace_event("exp.run.finished", spec=spec.spec_hash(),
                    **stats.to_dict())
    return ExperimentResult(
        spec=spec, sections=sections, stats=stats,
        workdir=str(store.root) if store.persistent else None)


def experiment_status(spec: ExperimentSpec,
                      workdir: str) -> Dict[str, object]:
    """Completion report of a spec against a cache directory.

    ``state`` is ``"complete"`` (every node cached), ``"partial"``
    (some), or ``"empty"`` (none) — the ``repro exp status`` exit-code
    contract maps these to 0/1/2.
    """
    store = ResultStore(workdir)
    graph = compile_spec(spec)
    nodes = []
    n_done = 0
    for key in graph.topo_order():
        node = graph.nodes[key]
        done = store.has(key)
        n_done += bool(done)
        nodes.append({"key": key, "kind": node.kind,
                      "label": node.label, "done": bool(done)})
    if n_done == len(nodes):
        state = "complete"
    elif n_done:
        state = "partial"
    else:
        state = "empty"
    return {"spec": spec.to_dict(), "spec_hash": spec.spec_hash(),
            "state": state, "total": len(nodes), "done": n_done,
            "nodes": nodes}


def load_experiment(spec: ExperimentSpec,
                    workdir: str) -> ExperimentResult:
    """Rebuild the :class:`ExperimentResult` of a completed run without
    executing anything (aggregates are recomputed if missing)."""
    store = ResultStore(workdir)
    graph = compile_spec(spec)
    sections = {}
    for section, key in graph.sections.items():
        node = graph.nodes[key]
        if store.has(key):
            sections[section] = store.load(key)
        else:
            payload = node.payload
            dep_results = {e["key"]: store.load(e["key"])
                           for e in payload["entries"]}
            sections[section] = aggregate_section(
                section, payload["entries"], payload["meta"],
                dep_results)
    return ExperimentResult(spec=spec, sections=sections,
                            workdir=str(store.root))


def clean_experiment(workdir: str) -> int:
    """Drop every cached node and spec record; returns node count."""
    return ResultStore(workdir).clear()
