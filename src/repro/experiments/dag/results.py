"""Aggregation and the shared typed result record.

Every experiment section reduces its evaluation nodes into one
JSON-safe aggregate record (this is the ``aggregate`` node's executor),
and :class:`ExperimentResult` wraps those records behind typed accessors
that reproduce the exact legacy shapes — ``run_comparison``'s
``{dataset: {model: {metric: (mean, std)}}}``, ``run_ablation``'s
``{dataset: {variant: {metric: pct}}}``, and so on — so the deprecation
shims forward without any caller-visible change.

Determinism note: aggregates are pure functions of their entry results,
and node results round-trip through JSON with exact float ``repr``
forms, so an aggregate computed from disk-cached results is bit-equal
to one computed from a fresh run — the property the kill→resume test
pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.experiments.dag.spec import ExperimentSpec
from repro.experiments.dag.store import CacheStats


# ----------------------------------------------------------------------
# Section aggregation (the `aggregate` node executor)
# ----------------------------------------------------------------------
def _agg_comparison(entries: List[dict], meta: dict,
                    results: Dict[str, dict]) -> dict:
    seeds = list(meta["seeds"])
    tables: Dict[str, dict] = {}
    per_user: Dict[str, dict] = {}
    for entry in entries:
        record = results[entry["key"]]
        store = (tables.setdefault(entry["dataset"], {})
                 .setdefault(entry["model"], {}))
        for metric, value in record["means"].items():
            store.setdefault(metric, []).append(value)
        # Legacy run_comparison keeps the last seed's per-user vectors
        # for significance testing.
        if entry["seed"] == seeds[-1]:
            per_user.setdefault(entry["dataset"], {})[entry["model"]] = \
                record["per_user"]
    for models in tables.values():
        for store in models.values():
            for metric in list(store):
                values = np.asarray(store[metric])
                store[metric] = [float(values.mean()),
                                 float(values.std())]
    significance = {}
    for ds_name, model_vectors in per_user.items():
        from repro.experiments.runner import significance_vs_best_baseline
        sig = significance_vs_best_baseline(
            {m: {k: np.asarray(v) for k, v in vecs.items()}
             for m, vecs in model_vectors.items()})
        if sig:
            significance[ds_name] = {
                "best_baseline": sig["best_baseline"],
                "significant": bool(sig["significant"]),
                "p_value": float(sig["p_value"]),
            }
    return {"tables": tables, "per_user": per_user,
            "significance": significance, "meta": meta}


def _agg_ablation(entries: List[dict], meta: dict,
                  results: Dict[str, dict]) -> dict:
    tables: Dict[str, dict] = {}
    for entry in entries:
        record = results[entry["key"]]
        store = (tables.setdefault(entry["dataset"], {})
                 .setdefault(entry["variant"], {}))
        for metric, value in record["means"].items():
            store.setdefault(metric, []).append(value)
    # Mean over seeds; with one seed this is the value itself (exactly —
    # np.mean of a singleton returns the same float64).
    for variants in tables.values():
        for store in variants.values():
            for metric in list(store):
                store[metric] = float(np.mean(store[metric]))
    return {"tables": tables, "meta": meta}


def _agg_sweep(entries: List[dict], meta: dict,
               results: Dict[str, dict]) -> dict:
    series: Dict[str, dict] = {}
    for entry in entries:
        record = results[entry["key"]]
        (series.setdefault(entry["dataset"], {})
         .setdefault(entry["param"], [])
         .append({"value": entry["value"], "means": record["means"]}))
    return {"series": series, "meta": meta}


def _agg_lambda(entries: List[dict], meta: dict,
                results: Dict[str, dict]) -> dict:
    tables: Dict[str, dict] = {}
    for entry in entries:
        record = results[entry["key"]]
        section = tables.setdefault(entry["dataset"],
                                    {"baseline": None, "series": []})
        if entry["role"] == "baseline":
            section["baseline"] = record["means"]
        else:
            section["series"].append({"lam": entry["lam"],
                                      "means": record["means"]})
    return {"tables": tables, "meta": meta}


def _agg_robustness(entries: List[dict], meta: dict,
                    results: Dict[str, dict]) -> dict:
    rows = [{"fraction": entry["fraction"], "model": entry["model"],
             "means": results[entry["key"]]["means"]}
            for entry in entries]
    return {"rows": rows, "meta": meta}


def _agg_cases(entries: List[dict], meta: dict,
               results: Dict[str, dict]) -> dict:
    by_dataset = {entry["dataset"]: results[entry["key"]]["rows"]
                  for entry in entries}
    return {"rows_by_dataset": by_dataset, "meta": meta}


_AGGREGATORS = {
    "comparison": _agg_comparison,
    "ablation": _agg_ablation,
    "sweep": _agg_sweep,
    "lambda": _agg_lambda,
    "robustness": _agg_robustness,
    "cases": _agg_cases,
}


def aggregate_section(section: str, entries: List[dict], meta: dict,
                      results: Dict[str, dict]) -> dict:
    """Reduce one section's node results into its aggregate record."""
    return _AGGREGATORS[section](list(entries), dict(meta), results)


# ----------------------------------------------------------------------
# The shared typed result record
# ----------------------------------------------------------------------
@dataclass
class ExperimentResult:
    """One schema out: what every experiment entrypoint now returns.

    ``sections`` maps section kind → aggregate record (a single-kind
    spec has one section; a grid has all six).  The ``comparison()`` /
    ``ablation()`` / … accessors rebuild the exact legacy shapes the
    deprecated entrypoints used to return.
    """

    spec: ExperimentSpec
    sections: Dict[str, dict]
    stats: CacheStats = field(default_factory=CacheStats)
    workdir: Optional[str] = None

    @property
    def spec_hash(self) -> str:
        return self.spec.spec_hash()

    def section(self, kind: str) -> dict:
        if kind not in self.sections:
            raise KeyError(f"experiment has no {kind!r} section; "
                           f"available: {sorted(self.sections)}")
        return self.sections[kind]

    # -- legacy-shape accessors ---------------------------------------
    def comparison(self) -> dict:
        """``{dataset: {model: {metric: (mean, std)}, "_per_user": …}}``."""
        agg = self.section("comparison")
        out: dict = {}
        for ds_name, models in agg["tables"].items():
            out[ds_name] = {
                model: {metric: tuple(pair)
                        for metric, pair in store.items()}
                for model, store in models.items()}
            out[ds_name]["_per_user"] = {
                model: {metric: np.asarray(values)
                        for metric, values in vectors.items()}
                for model, vectors in
                agg["per_user"].get(ds_name, {}).items()}
        return out

    def ablation(self) -> dict:
        """``{dataset: {variant: {metric: pct}}}``."""
        agg = self.section("ablation")
        return {ds: {variant: dict(store)
                     for variant, store in variants.items()}
                for ds, variants in agg["tables"].items()}

    def sweep(self) -> dict:
        """``{dataset: {param: {value: {metric: pct}}}}``."""
        agg = self.section("sweep")
        return {ds: {param: {row["value"]: dict(row["means"])
                             for row in rows}
                     for param, rows in params.items()}
                for ds, params in agg["series"].items()}

    def lambda_sweep(self) -> dict:
        """``{dataset: {"baseline": …, "series": {lam: …}}}``."""
        agg = self.section("lambda")
        return {ds: {"baseline": dict(table["baseline"]),
                     "series": {row["lam"]: dict(row["means"])
                                for row in table["series"]}}
                for ds, table in agg["tables"].items()}

    def robustness(self) -> dict:
        """``{fraction: {"LogiRec": …, "LogiRec++": …}}``."""
        agg = self.section("robustness")
        out: dict = {}
        for row in agg["rows"]:
            out.setdefault(row["fraction"], {})[row["model"]] = \
                dict(row["means"])
        return out

    def cases(self, dataset: Optional[str] = None) -> List[dict]:
        """Table V rows for one dataset (the only one, if unambiguous)."""
        agg = self.section("cases")
        by_dataset = agg["rows_by_dataset"]
        if dataset is None:
            if len(by_dataset) != 1:
                raise KeyError(f"cases span datasets "
                               f"{sorted(by_dataset)}; pass one")
            dataset = next(iter(by_dataset))
        return by_dataset[dataset]

    # -- rendering ----------------------------------------------------
    def format(self, kind: Optional[str] = None) -> str:
        """Render one section (or every section of a grid) as text."""
        kinds = [kind] if kind else sorted(self.sections)
        blocks = []
        for name in kinds:
            blocks.append(_FORMATTERS[name](self))
        return "\n\n".join(blocks)

    def to_dict(self) -> dict:
        return {"spec": self.spec.to_dict(),
                "spec_hash": self.spec_hash,
                "sections": self.sections,
                "stats": self.stats.to_dict()}


def _format_comparison(result: ExperimentResult) -> str:
    from repro.experiments.runner import format_comparison_table
    return format_comparison_table(result.comparison(),
                                   ks=result.spec.ks)


def _format_ablation(result: ExperimentResult) -> str:
    from repro.experiments.ablation import format_ablation_table
    return format_ablation_table(result.ablation())


def _format_sweep(result: ExperimentResult) -> str:
    lines = ["Hyperparameter study (Table IV):"]
    for ds_name, params in result.sweep().items():
        lines.append(f"=== {ds_name} ===")
        for param, values in params.items():
            for value, means in values.items():
                cells = " ".join(f"{m}={v:6.2f}"
                                 for m, v in sorted(means.items()))
                lines.append(f"{param}={value!s:<6} {cells}")
    return "\n".join(lines)


def _format_lambda(result: ExperimentResult) -> str:
    spec = result.spec
    lines = [f"λ sweep vs {spec.baseline} (Fig. 6):"]
    for ds_name, table in result.lambda_sweep().items():
        lines.append(f"=== {ds_name} ===")
        base = " ".join(f"{m}={v:6.2f}"
                        for m, v in sorted(table["baseline"].items()))
        lines.append(f"{spec.baseline:<10} {base}")
        for lam, means in table["series"].items():
            cells = " ".join(f"{m}={v:6.2f}"
                             for m, v in sorted(means.items()))
            lines.append(f"λ={lam!s:<8} {cells}")
    return "\n".join(lines)


def _format_robustness(result: ExperimentResult) -> str:
    from repro.experiments.robustness import format_robustness_table
    metric = f"recall@{result.spec.ks[0]}"
    return format_robustness_table(result.robustness(), metric=metric)


def _format_cases(result: ExperimentResult) -> str:
    from repro.experiments.cases import format_case_table
    agg = result.section("cases")
    blocks = []
    for ds_name, rows in agg["rows_by_dataset"].items():
        blocks.append(f"=== {ds_name} ===\n" + format_case_table(rows))
    return "\n".join(blocks)


_FORMATTERS = {
    "comparison": _format_comparison,
    "ablation": _format_ablation,
    "sweep": _format_sweep,
    "lambda": _format_lambda,
    "robustness": _format_robustness,
    "cases": _format_cases,
}
