"""The declarative :class:`ExperimentSpec`: one schema in, one hash out.

An experiment — a Table-II comparison, a Table-III ablation, a sweep, a
robustness grid, Table-V case studies, or the whole paper grid — is
described by a single frozen dataclass.  The spec is the *only* input to
the orchestration layer: it compiles to a node graph
(:mod:`repro.experiments.dag.graph`), every node result is keyed by a
hash of the fields that determine it, and re-running the same spec skips
every completed node.

Hashing contract
----------------
``spec_hash()`` (and the per-node keys derived from the spec) is a
sha256 over the canonical JSON form: sorted keys, no whitespace
dependence, tuples serialized as lists.  The hash is a pure function of
the spec's fields — stable across processes and Python runs (no
``hash()`` salting) — and *any* field change produces a new hash.
Execution details (worker count, cache directory, telemetry) are
deliberately not spec fields: they must not invalidate cached results.
``backend`` *is* a field, because the fast backend's float32 numerics
are tolerance-equal, not bit-equal, to the reference.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

SPEC_KINDS = ("comparison", "ablation", "sweep", "lambda", "robustness",
              "cases", "grid")

#: Datasets of the paper's Table I, in presentation order.
ALL_DATASETS = ("ciao", "cd", "clothing", "book")


class SpecError(ValueError, KeyError):
    """An :class:`ExperimentSpec` is malformed: unknown kind, model,
    dataset, variant, or hyperparameter.

    Subclasses both :class:`ValueError` and :class:`KeyError` so the
    deprecated entrypoint shims keep the legacy lookup-error contract
    (e.g. ``run_ablation`` raised ``KeyError`` on unknown variants).
    """

    def __str__(self) -> str:  # KeyError.__str__ would repr-quote it
        return str(self.args[0]) if self.args else ""


def canonical_json(value) -> str:
    """Deterministic JSON: sorted keys, compact separators.

    Floats round-trip exactly (``json`` emits ``repr``-shortest forms),
    so hashing canonical JSON is bit-stable across processes.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def digest(value, n: int = 12) -> str:
    """First ``n`` hex chars of the sha256 of ``value``'s canonical JSON."""
    payload = canonical_json(value).encode()
    return hashlib.sha256(payload).hexdigest()[:n]


def _tup(value, cast=None) -> tuple:
    if value is None:
        return ()
    if isinstance(value, (str, bytes)):
        value = (value,)
    out = tuple(value)
    return tuple(cast(v) for v in out) if cast else out


@dataclass(frozen=True)
class ExperimentSpec:
    """Frozen description of one experiment (or the full paper grid).

    Fields unused by a ``kind`` are normalized to their defaults so they
    never perturb the hash: a comparison spec ignores ``variants``, an
    ablation ignores ``models``, and so on.

    Parameters
    ----------
    kind:
        One of :data:`SPEC_KINDS`.
    datasets:
        Dataset names from the registry.  Defaults per kind (the paper's
        choices): comparison/grid run all four, ablation and the λ sweep
        run ciao+cd, sweeps/robustness/cases run cd.
    models:
        Comparison only; empty means the full 15-model zoo.
    variants:
        Ablation only; empty means every Table-III variant.
    params:
        Hyperparameter sweep only; empty means every Table-IV row.
    lambdas:
        λ-sweep grid (Fig. 6).
    fractions:
        Taxonomy-corruption fractions (robustness).
    baseline:
        The fixed comparison model of the λ sweep.
    seeds:
        Run seeds; comparison/ablation aggregate over all of them,
        sweeps and cases use the first (the paper's protocol).
    ks:
        Ranking cutoffs of the evaluation.
    epochs:
        Budget override applied to every training node (``None`` keeps
        each family's tuned budget).
    backend:
        Tensor-execution backend name; every pool worker re-selects it
        after fork/spawn.
    scale:
        Dataset scale multiplier (1.0 = bench scale).
    """

    kind: str = "comparison"
    datasets: Tuple[str, ...] = ()
    models: Tuple[str, ...] = ()
    variants: Tuple[str, ...] = ()
    params: Tuple[str, ...] = ()
    lambdas: Tuple[float, ...] = ()
    fractions: Tuple[float, ...] = ()
    baseline: str = "HRCF"
    seeds: Tuple[int, ...] = (0,)
    ks: Tuple[int, ...] = (10, 20)
    epochs: Optional[int] = None
    backend: str = "reference"
    scale: float = 1.0

    def __post_init__(self):
        set_ = object.__setattr__
        set_(self, "datasets", _tup(self.datasets, str))
        set_(self, "models", _tup(self.models, str))
        set_(self, "variants", _tup(self.variants, str))
        set_(self, "params", _tup(self.params, str))
        set_(self, "lambdas", _tup(self.lambdas, float))
        set_(self, "fractions", _tup(self.fractions, float))
        set_(self, "seeds", _tup(self.seeds, int))
        set_(self, "ks", _tup(self.ks, int))
        set_(self, "scale", float(self.scale))
        if self.epochs is not None:
            set_(self, "epochs", int(self.epochs))
        self._validate()
        self._normalize()

    # ------------------------------------------------------------------
    # Validation + per-kind normalization
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if self.kind not in SPEC_KINDS:
            raise SpecError(f"unknown experiment kind {self.kind!r}; "
                            f"known: {list(SPEC_KINDS)}")
        for name in self.datasets:
            if name not in ALL_DATASETS:
                raise SpecError(f"unknown dataset {name!r}; known: "
                                f"{list(ALL_DATASETS)}")
        if self.models or self.kind in ("comparison", "grid"):
            from repro.experiments.runner import ALL_MODEL_NAMES
            for name in self.models:
                if name not in ALL_MODEL_NAMES:
                    raise SpecError(f"unknown model {name!r}; known: "
                                    f"{ALL_MODEL_NAMES}")
        if self.variants:
            from repro.experiments.ablation import ABLATIONS
            for variant in self.variants:
                if variant not in ABLATIONS:
                    raise SpecError(f"unknown ablation variant "
                                    f"{variant!r}; known: {ABLATIONS}")
        if self.params:
            from repro.experiments.sweeps import HYPERPARAM_GRID
            for param in self.params:
                if param not in HYPERPARAM_GRID:
                    raise SpecError(
                        f"unknown sweep hyperparameter {param!r}; "
                        f"known: {list(HYPERPARAM_GRID)}")
        if self.kind == "lambda":
            from repro.experiments.runner import ALL_MODEL_NAMES
            if self.baseline not in ALL_MODEL_NAMES:
                raise SpecError(f"unknown λ-sweep baseline "
                                f"{self.baseline!r}")
        if not self.seeds:
            raise SpecError("spec needs at least one seed")
        if not self.ks:
            raise SpecError("spec needs at least one ranking cutoff k")
        for fraction in self.fractions:
            if not 0.0 <= fraction <= 1.0:
                raise SpecError(f"corruption fraction must be in [0, 1],"
                                f" got {fraction}")
        if self.backend:
            from repro.tensor.backend import available_backends
            if self.backend not in available_backends():
                raise SpecError(
                    f"unknown backend {self.backend!r}; known: "
                    f"{list(available_backends())}")

    _DEFAULT_DATASETS = {
        "comparison": ALL_DATASETS,
        "grid": ALL_DATASETS,
        "ablation": ("ciao", "cd"),
        "lambda": ("ciao", "cd"),
        "sweep": ("cd",),
        "robustness": ("cd",),
        "cases": ("cd",),
    }

    def _normalize(self) -> None:
        """Fill per-kind defaults; zero out fields the kind ignores."""
        set_ = object.__setattr__
        if not self.datasets:
            set_(self, "datasets", self._DEFAULT_DATASETS[self.kind])
        if self.kind in ("comparison", "grid") and not self.models:
            from repro.experiments.runner import ALL_MODEL_NAMES
            set_(self, "models", tuple(ALL_MODEL_NAMES))
        if self.kind in ("ablation", "grid") and not self.variants:
            from repro.experiments.ablation import ABLATIONS
            set_(self, "variants", tuple(ABLATIONS))
        if self.kind in ("sweep", "grid") and not self.params:
            from repro.experiments.sweeps import HYPERPARAM_GRID
            set_(self, "params", tuple(HYPERPARAM_GRID))
        if self.kind in ("lambda", "grid") and not self.lambdas:
            set_(self, "lambdas", (0.0, 0.01, 0.1, 1.0, 1.5))
        if self.kind in ("robustness", "grid") and not self.fractions:
            set_(self, "fractions", (0.0, 0.2, 0.5))
        # Fields foreign to the kind never perturb the hash.
        zeroed = {
            "comparison": ("variants", "params", "lambdas", "fractions"),
            "ablation": ("models", "params", "lambdas", "fractions"),
            "sweep": ("models", "variants", "lambdas", "fractions"),
            "lambda": ("models", "variants", "params", "fractions"),
            "robustness": ("models", "variants", "params", "lambdas"),
            "cases": ("models", "variants", "params", "lambdas",
                      "fractions"),
            "grid": (),
        }[self.kind]
        for name in zeroed:
            set_(self, name, ())
        if self.kind not in ("lambda", "grid"):
            set_(self, "baseline", "HRCF")

    # ------------------------------------------------------------------
    # Serialization + hashing
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "ExperimentSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(record) - known
        if unknown:
            raise SpecError(f"unknown spec field(s): {sorted(unknown)}")
        return cls(**record)

    @classmethod
    def from_file(cls, path) -> "ExperimentSpec":
        try:
            with open(path) as fh:
                record = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise SpecError(f"unreadable spec file {path}: {exc}") from exc
        if not isinstance(record, dict):
            raise SpecError(f"spec file {path} must hold a JSON object")
        return cls.from_dict(record)

    def spec_hash(self) -> str:
        return digest(self.to_dict())

    def describe(self) -> str:
        parts = [f"kind={self.kind}", f"datasets={list(self.datasets)}"]
        if self.models:
            parts.append(f"models={len(self.models)}")
        if self.variants:
            parts.append(f"variants={len(self.variants)}")
        parts.append(f"seeds={list(self.seeds)}")
        if self.epochs is not None:
            parts.append(f"epochs={self.epochs}")
        parts.append(f"backend={self.backend}")
        return " ".join(parts)
