"""Node execution: the worker-side half of the experiment DAG.

Every function here is importable at module top level so the
process-pool scheduler can ship node descriptions (plain dicts) to
workers.  Heavy imports happen inside the builders, keeping the module
cheap to import in the parent.

Worker hygiene (the PR8 front-end pattern): a pool worker first
quiesces any telemetry sink inherited across ``fork`` — re-pointing the
events file descriptor at ``/dev/null`` so the parent's JSONL stream is
not corrupted by child writes — and then *re-selects the tensor
backend*, because the process-global backend state does not follow the
parent's ``--backend`` choice across ``spawn`` (and must be re-applied
defensively under ``fork``).
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.experiments.dag.graph import Node
from repro.experiments.dag.store import ResultStore


class ExperimentError(RuntimeError):
    """A node failed; carries the node label and the original cause."""

    def __init__(self, label: str, cause: BaseException):
        super().__init__(f"experiment node {label} failed: "
                         f"{type(cause).__name__}: {cause}")
        self.label = label
        self.cause = cause


# ----------------------------------------------------------------------
# Dataset + model builders (mirror the legacy entrypoints exactly)
# ----------------------------------------------------------------------
def build_dataset(payload: Dict[str, object]):
    """Deterministically realize the dataset a payload describes."""
    import numpy as np

    from repro.data import load_dataset, temporal_split

    dataset = load_dataset(str(payload["name"]),
                           scale=float(payload.get("scale", 1.0)))
    fraction = float(payload.get("fraction", 0.0))
    if fraction > 0.0:
        from repro.experiments.robustness import (_with_taxonomy,
                                                  corrupt_taxonomy)
        # Keyed by (seed, fraction) so every fraction's corruption is
        # independent of which other fractions the spec sweeps.
        rng = np.random.default_rng(
            [int(payload.get("corrupt_seed", 0)),
             int(round(fraction * 10_000))])
        dataset = _with_taxonomy(
            dataset, corrupt_taxonomy(dataset.taxonomy, fraction, rng))
    return dataset, temporal_split(dataset)


def build_train_model(payload: Dict[str, object], dataset):
    """Instantiate the model a train payload describes (untrained)."""
    builder = payload["builder"]
    seed = int(payload["seed"])
    epochs = payload.get("epochs")
    ds_name = str(payload["dataset"]["name"])
    if builder == "zoo":
        from repro.experiments.runner import build_model
        model = build_model(str(payload["model"]), dataset, seed)
        if epochs is not None:
            model.config.epochs = int(epochs)
        return model
    if builder == "ablation":
        from repro.core import LogiRecConfig
        from repro.experiments.ablation import _variant_model
        from repro.experiments.runner import (LAMBDA_BY_DATASET,
                                              LAYERS_BY_DATASET)
        base = LogiRecConfig(dim=16, epochs=int(epochs) if epochs else 300,
                             batch_size=4096, lr=0.01, margin=0.5,
                             n_negatives=2,
                             lam=LAMBDA_BY_DATASET.get(ds_name, 1.0),
                             n_layers=LAYERS_BY_DATASET.get(ds_name, 3),
                             seed=seed)
        return _variant_model(str(payload["variant"]), dataset, base)
    if builder == "sweep":
        from dataclasses import replace

        from repro.core import LogiRecPP
        from repro.experiments.sweeps import _base_config
        cfg = replace(_base_config(ds_name, seed,
                                   int(epochs) if epochs else None),
                      **{str(payload["param"]): payload["value"]})
        return LogiRecPP(dataset.n_users, dataset.n_items,
                         dataset.n_tags, cfg)
    if builder == "robustness":
        from repro.core import LogiRec, LogiRecConfig, LogiRecPP
        cls = {"LogiRec": LogiRec,
               "LogiRec++": LogiRecPP}[str(payload["model"])]
        config = LogiRecConfig(dim=16,
                               epochs=int(epochs) if epochs else 150,
                               lam=2.0, seed=seed)
        return cls(dataset.n_users, dataset.n_items, dataset.n_tags,
                   config)
    if builder == "cases":
        from repro.core import LogiRecConfig, LogiRecPP
        from repro.experiments.runner import LAMBDA_BY_DATASET
        config = LogiRecConfig(epochs=int(epochs) if epochs else 150,
                               lam=LAMBDA_BY_DATASET.get(ds_name, 1.0),
                               seed=seed)
        return LogiRecPP(dataset.n_users, dataset.n_items,
                         dataset.n_tags, config)
    raise ValueError(f"unknown train builder {builder!r}")


def _trained_model(store: ResultStore, train_key: str, dataset, split):
    """The trained model behind a train node: live object (in-memory
    store) or checkpoint round-trip (persistent store) — bit-identical
    scoring either way by the PR4 contract."""
    model = store.artifacts.get(train_key)
    if model is not None:
        return model
    from repro.serve import load_checkpoint
    node_dir = store.node_dir(train_key)
    return load_checkpoint(node_dir / "final", dataset=dataset,
                           split=split)


# ----------------------------------------------------------------------
# Per-kind executors
# ----------------------------------------------------------------------
def _execute_dataset(node: Node, store: ResultStore, fault_plan) -> dict:
    dataset, split = build_dataset(node.payload)
    return {
        "name": dataset.name,
        "n_users": int(dataset.n_users),
        "n_items": int(dataset.n_items),
        "n_tags": int(dataset.n_tags),
        "n_interactions": int(dataset.n_interactions),
        "n_train": int(len(split.train)),
        "corrupted_fraction": float(node.payload.get("fraction", 0.0)),
    }


def _execute_train(node: Node, store: ResultStore, fault_plan) -> dict:
    from repro.eval import Evaluator

    payload = node.payload
    dataset, split = build_dataset(payload["dataset"])
    evaluator = Evaluator(dataset, split, ks=tuple(payload["ks"]))
    node_dir = store.node_dir(node.key)
    resumed = False
    if node_dir is None:
        # Ephemeral (shim) mode: plain fit, live model handed to eval.
        # A no-fault supervisor leaves numerics bit-identical (PR5), so
        # both modes produce the same results.
        model = build_train_model(payload, dataset)
        model.fit(dataset, split, evaluator=evaluator)
        store.artifacts[node.key] = model
    else:
        from repro.robust import (ResilienceConfig, TrainingSupervisor,
                                  has_fit_state)
        ck_dir = node_dir / "ck"
        resumed = has_fit_state(ck_dir)
        supervisor = TrainingSupervisor(
            ResilienceConfig(checkpoint_dir=ck_dir, checkpoint_every=1,
                             resume=resumed),
            fault_plan=fault_plan)
        if resumed:
            from repro.serve import load_checkpoint
            model = load_checkpoint(ck_dir, dataset=dataset, split=split)
        else:
            model = build_train_model(payload, dataset)
        model.fit(dataset, split, evaluator=evaluator,
                  supervisor=supervisor)
        from repro.serve import save_checkpoint
        save_checkpoint(model, node_dir / "final", dataset=dataset)
    return {
        "model_class": type(model).__name__,
        "epochs_run": len(model.loss_history),
        "final_loss": (float(model.loss_history[-1])
                       if model.loss_history else None),
        "resumed": bool(resumed),
        "checkpoint": "final" if node_dir is not None else None,
        "backend": str(payload.get("backend", "reference")),
    }


def _execute_eval(node: Node, store: ResultStore, fault_plan) -> dict:
    from repro.eval import Evaluator

    payload = node.payload
    dataset, split = build_dataset(payload["dataset"])
    model = _trained_model(store, str(payload["train"]), dataset, split)
    evaluator = Evaluator(dataset, split, ks=tuple(payload["ks"]))
    result = evaluator.evaluate_test(model)
    return {
        "means": {k: float(v) for k, v in result.means.items()},
        "per_user": {k: [float(x) for x in v]
                     for k, v in result.per_user.items()},
        "user_ids": [int(u) for u in result.user_ids],
    }


def _execute_cases(node: Node, store: ResultStore, fault_plan) -> dict:
    payload = node.payload
    dataset, split = build_dataset(payload["dataset"])
    model = _trained_model(store, str(payload["train"]), dataset, split)
    from repro.experiments.cases import case_rows
    rows = case_rows(model, dataset, split,
                     top_k=int(payload.get("top_k", 6)),
                     max_tags=int(payload.get("max_tags", 5)))
    return {"rows": rows}


def _execute_aggregate(node: Node, store: ResultStore,
                       fault_plan) -> dict:
    from repro.experiments.dag.results import aggregate_section

    payload = node.payload
    dep_results = {entry["key"]: store.load(entry["key"])
                   for entry in payload["entries"]}
    return aggregate_section(str(payload["section"]),
                             payload["entries"], payload["meta"],
                             dep_results)


_EXECUTORS = {
    "dataset": _execute_dataset,
    "train": _execute_train,
    "eval": _execute_eval,
    "cases": _execute_cases,
    "aggregate": _execute_aggregate,
}


def execute_node(node: Node, store: ResultStore,
                 fault_plan=None) -> dict:
    """Run one node in the current process and return its result record.

    The caller persists the result; this function only writes node
    scratch artifacts (checkpoints) under ``store.node_dir``.
    """
    return _EXECUTORS[node.kind](node, store, fault_plan)


# ----------------------------------------------------------------------
# Process-pool entrypoints
# ----------------------------------------------------------------------
def _quiesce_observability() -> None:
    """Silence telemetry inherited across ``fork`` (PR8 pattern).

    ``obs.disable()`` would close the inherited ``events.jsonl`` handle
    and flush fork-captured buffers into the parent's stream; instead
    the sink's descriptor is re-pointed at ``/dev/null`` (fd tables are
    per-process) and the run globals nulled.
    """
    from repro.obs import run as run_mod
    active = run_mod._RUN
    if active is not None:
        fh = getattr(active._sink, "_fh", None)
        if fh is not None:
            try:
                devnull = os.open(os.devnull, os.O_WRONLY)
                os.dup2(devnull, fh.fileno())
                os.close(devnull)
            except OSError:  # pragma: no cover - sink already closed
                pass
    run_mod._RUN = None
    run_mod._NAN_CHECKS = False


def pool_initializer(backend: Optional[str]) -> None:
    """Per-worker init: quiesce inherited telemetry, re-select backend."""
    _quiesce_observability()
    if backend:
        from repro.tensor import set_backend
        set_backend(backend)


def pool_execute(node_dict: Dict[str, object], root: str,
                 backend: Optional[str]) -> Tuple[str, dict]:
    """Execute one node inside a pool worker against the disk store.

    The backend is re-asserted per call (cheap when unchanged) so a
    worker recycled across specs with different backends stays correct.
    """
    if backend:
        from repro.tensor import set_backend
        set_backend(backend)
    node = Node.from_dict(node_dict)
    store = ResultStore(root)
    return node.key, execute_node(node, store)
