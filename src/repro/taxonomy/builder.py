"""Automatic taxonomy construction from a flat item-tag matrix.

The paper assumes an *existing* tag taxonomy, but notes (citing Tan et
al., ICDE 2022) that taxonomies can be constructed automatically when
only flat tags are available.  This module implements the classic
subsumption heuristic:

tag ``a`` subsumes tag ``b`` when almost every item of ``b`` also carries
``a`` while ``a`` is clearly broader — i.e. ``P(a | b) >= threshold`` and
``|items(a)| > |items(b)|``.  Each tag attaches to its *smallest*
subsumer (most specific parent), yielding a forest; ties break by tag id
for determinism.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.taxonomy.taxonomy import Taxonomy


def build_taxonomy_from_tags(item_tags: sp.spmatrix,
                             subsumption_threshold: float = 0.8,
                             min_support: int = 2,
                             names: Optional[List[str]] = None
                             ) -> Taxonomy:
    """Infer a tag forest from item-tag co-occurrence.

    Parameters
    ----------
    item_tags:
        Binary ``(n_items, n_tags)`` matrix Q.
    subsumption_threshold:
        Minimum ``P(parent | child)`` for a subsumption edge.
    min_support:
        Tags with fewer tagged items than this stay roots (their
        conditional probabilities are too noisy to attach).
    names:
        Optional tag names carried into the taxonomy.
    """
    q = sp.csc_matrix(item_tags)
    q.data[:] = 1.0
    n_tags = q.shape[1]
    support = np.asarray(q.sum(axis=0)).ravel()
    # co[a, b] = |items(a) & items(b)|
    co = np.asarray((q.T @ q).todense())

    parents = np.full(n_tags, -1, dtype=np.int64)
    for child in range(n_tags):
        if support[child] < min_support:
            continue
        best_parent = -1
        best_support = np.inf
        for parent in range(n_tags):
            if parent == child:
                continue
            if support[parent] <= support[child]:
                continue  # a parent must be strictly broader
            conditional = co[parent, child] / support[child]
            if conditional >= subsumption_threshold:
                # Most specific subsumer = smallest support.
                if support[parent] < best_support:
                    best_parent = parent
                    best_support = support[parent]
        parents[child] = best_parent

    _break_cycles(parents, support)
    return Taxonomy(parents, names)


def _break_cycles(parents: np.ndarray, support: np.ndarray) -> None:
    """Detach the weakest edge of any parent cycle (ties in support can
    produce 2-cycles despite the strict-broader rule on noisy data)."""
    n = len(parents)
    for start in range(n):
        seen = {}
        node = start
        while node != -1 and node not in seen:
            seen[node] = True
            node = int(parents[node])
        if node != -1:
            # Cycle found: cut at the member with the largest support
            # (the most general tag becomes a root).
            cycle = [node]
            cur = int(parents[node])
            while cur != node:
                cycle.append(cur)
                cur = int(parents[cur])
            cut = max(cycle, key=lambda t: (support[t], -t))
            parents[cut] = -1


def taxonomy_quality(inferred: Taxonomy, reference: Taxonomy) -> dict:
    """Edge precision/recall of an inferred taxonomy vs a reference.

    Compares *ancestor* pairs (transitive closure), the standard
    taxonomy-evaluation protocol, so an inferred grandparent edge still
    counts when the intermediate level was skipped.
    """
    def ancestor_pairs(tax: Taxonomy) -> set:
        pairs = set()
        for t in range(tax.n_tags):
            for anc in tax.ancestors(t):
                pairs.add((anc, t))
        return pairs

    inferred_pairs = ancestor_pairs(inferred)
    reference_pairs = ancestor_pairs(reference)
    if not inferred_pairs:
        return {"precision": 0.0, "recall": 0.0, "f1": 0.0}
    tp = len(inferred_pairs & reference_pairs)
    precision = tp / len(inferred_pairs)
    recall = tp / len(reference_pairs) if reference_pairs else 0.0
    f1 = (2 * precision * recall / (precision + recall)
          if precision + recall else 0.0)
    return {"precision": precision, "recall": recall, "f1": f1}
