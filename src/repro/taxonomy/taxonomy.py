"""The :class:`Taxonomy` tree over tags.

Tags are integer ids ``0 .. n_tags - 1``.  The taxonomy is a forest: every
tag has at most one parent (``-1`` marks a root).  Levels are 1-based with
roots at level 1, matching the paper's convention (η = total number of
levels, empirically 4).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np


class Taxonomy:
    """A forest of tags with parent pointers and cached level structure.

    Parameters
    ----------
    parents:
        ``parents[t]`` is the parent tag id of ``t`` or ``-1`` for roots.
    names:
        Optional human-readable tag names (e.g. ``"<Alternative Rock>"``).
    """

    def __init__(self, parents: Sequence[int],
                 names: Optional[Sequence[str]] = None):
        self.parents = np.asarray(parents, dtype=np.int64)
        if self.parents.ndim != 1:
            raise ValueError("parents must be a 1-D sequence")
        n = len(self.parents)
        if names is None:
            names = [f"tag_{t}" for t in range(n)]
        if len(names) != n:
            raise ValueError("names length must match parents length")
        self.names: List[str] = list(names)
        self._validate()
        self._children: Dict[int, List[int]] = {t: [] for t in range(n)}
        for t, p in enumerate(self.parents):
            if p >= 0:
                self._children[int(p)].append(t)
        self.levels = self._compute_levels()

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        n = len(self.parents)
        for t, p in enumerate(self.parents):
            if p == t:
                raise ValueError(f"tag {t} is its own parent")
            if p >= n:
                raise ValueError(f"tag {t} has out-of-range parent {p}")
        # Cycle check by walking to the root from every node.
        for t in range(n):
            seen = set()
            node = t
            while node != -1:
                if node in seen:
                    raise ValueError(f"cycle detected at tag {t}")
                seen.add(node)
                node = int(self.parents[node])

    def _compute_levels(self) -> np.ndarray:
        levels = np.zeros(len(self.parents), dtype=np.int64)
        for t in range(len(self.parents)):
            level = 1
            node = int(self.parents[t])
            while node != -1:
                level += 1
                node = int(self.parents[node])
            levels[t] = level
        return levels

    # ------------------------------------------------------------------
    @property
    def n_tags(self) -> int:
        return len(self.parents)

    @property
    def depth(self) -> int:
        """Total number of levels (the paper's η)."""
        return int(self.levels.max()) if self.n_tags else 0

    @property
    def roots(self) -> List[int]:
        return [t for t, p in enumerate(self.parents) if p == -1]

    def children(self, tag: int) -> List[int]:
        return list(self._children[tag])

    def parent(self, tag: int) -> int:
        return int(self.parents[tag])

    def level(self, tag: int) -> int:
        return int(self.levels[tag])

    def is_leaf(self, tag: int) -> bool:
        return not self._children[tag]

    @property
    def leaves(self) -> List[int]:
        return [t for t in range(self.n_tags) if self.is_leaf(t)]

    def ancestors(self, tag: int) -> List[int]:
        """Ancestors from immediate parent up to the root (excluding tag)."""
        out = []
        node = int(self.parents[tag])
        while node != -1:
            out.append(node)
            node = int(self.parents[node])
        return out

    def descendants(self, tag: int) -> List[int]:
        """All strict descendants in BFS order."""
        out: List[int] = []
        frontier = list(self._children[tag])
        while frontier:
            node = frontier.pop()
            out.append(node)
            frontier.extend(self._children[node])
        return out

    def siblings(self, tag: int) -> List[int]:
        """Tags sharing this tag's parent (roots are mutual siblings)."""
        p = int(self.parents[tag])
        if p == -1:
            return [t for t in self.roots if t != tag]
        return [t for t in self._children[p] if t != tag]

    def subtree_leaves(self, tag: int) -> List[int]:
        """Leaf tags under ``tag`` (including ``tag`` itself if a leaf)."""
        if self.is_leaf(tag):
            return [tag]
        return [t for t in self.descendants(tag) if self.is_leaf(t)]

    def lowest_common_ancestor(self, a: int, b: int) -> int:
        """LCA of two tags, or ``-1`` if in different trees."""
        anc_a = set([a] + self.ancestors(a))
        node = b
        while node != -1:
            if node in anc_a:
                return node
            node = int(self.parents[node])
        return -1

    def tags_at_level(self, level: int) -> List[int]:
        return [t for t in range(self.n_tags) if self.levels[t] == level]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"parents": self.parents.tolist(), "names": self.names}

    @classmethod
    def from_dict(cls, payload: dict) -> "Taxonomy":
        return cls(payload["parents"], payload.get("names"))

    def save(self, path: str) -> None:
        with open(path, "w") as f:
            json.dump(self.to_dict(), f)

    @classmethod
    def load(cls, path: str) -> "Taxonomy":
        with open(path) as f:
            return cls.from_dict(json.load(f))

    # ------------------------------------------------------------------
    @classmethod
    def balanced(cls, depth: int, branching: int,
                 n_roots: int = 1) -> "Taxonomy":
        """Construct a balanced forest with the given depth and branching."""
        parents: List[int] = [-1] * n_roots
        frontier = list(range(n_roots))
        for _ in range(depth - 1):
            next_frontier = []
            for node in frontier:
                for _ in range(branching):
                    parents.append(node)
                    next_frontier.append(len(parents) - 1)
            frontier = next_frontier
        return cls(parents)

    def __repr__(self) -> str:
        return (f"Taxonomy(n_tags={self.n_tags}, depth={self.depth}, "
                f"roots={len(self.roots)})")
