"""Extraction of logical relations from a taxonomy + item-tag matrix.

Following Section IV-B (and Xiong et al., which the paper cites for the
extraction recipe):

* membership: every nonzero of the item-tag matrix Q;
* hierarchy: every (parent, child) taxonomy edge;
* exclusion: every unordered sibling pair (same parent) that shares **no
  common child tag** — and, to mirror the real-data pipeline, optionally no
  substantial overlap in tagged items.  The paper stresses this heuristic is
  *inaccurate and coarse* (e.g. overlapping genres mislabelled exclusive);
  LogiRec++'s relation mining exists precisely to repair it, so the
  extraction here keeps the noisy behaviour by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np
import scipy.sparse as sp

from repro.taxonomy.taxonomy import Taxonomy


@dataclass
class LogicalRelations:
    """Extracted logical relations ready for loss construction.

    Attributes
    ----------
    membership:
        ``(n_mem, 2)`` int array of (item, tag) pairs.
    hierarchy:
        ``(n_hie, 2)`` int array of (parent_tag, child_tag) pairs.
    exclusion:
        ``(n_ex, 2)`` int array of unordered (tag_i, tag_j) pairs, i < j.
    exclusion_levels:
        ``(n_ex,)`` int array: taxonomy level of each exclusive pair
        (the ``k`` of Eq. 12).
    """

    membership: np.ndarray
    hierarchy: np.ndarray
    exclusion: np.ndarray
    exclusion_levels: np.ndarray = field(default_factory=lambda: np.zeros(0,
                                         dtype=np.int64))

    @property
    def counts(self) -> dict:
        """Table-I style relation counts."""
        return {
            "n_membership": len(self.membership),
            "n_hierarchy": len(self.hierarchy),
            "n_exclusion": len(self.exclusion),
        }

    def exclusion_set(self) -> set:
        """Set of frozenset pairs for O(1) exclusion lookups."""
        return {frozenset((int(i), int(j))) for i, j in self.exclusion}


def extract_membership(item_tags: sp.spmatrix) -> np.ndarray:
    """All (item, tag) pairs present in the item-tag matrix Q."""
    coo = sp.coo_matrix(item_tags)
    pairs = np.stack([coo.row, coo.col], axis=1).astype(np.int64)
    # Deterministic order: by item then tag.
    order = np.lexsort((pairs[:, 1], pairs[:, 0]))
    return pairs[order]


def extract_hierarchy(taxonomy: Taxonomy) -> np.ndarray:
    """All (parent, child) edges of the taxonomy."""
    pairs = [(int(p), t) for t, p in enumerate(taxonomy.parents) if p >= 0]
    if not pairs:
        return np.zeros((0, 2), dtype=np.int64)
    return np.asarray(pairs, dtype=np.int64)


def extract_exclusions(taxonomy: Taxonomy,
                       item_tags: sp.spmatrix = None,
                       max_item_overlap: float = 1.0
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """Sibling pairs with no common child tag (the paper's noisy rule).

    Parameters
    ----------
    taxonomy:
        The tag forest.
    item_tags:
        Optional Q matrix; only used when ``max_item_overlap < 1``.
    max_item_overlap:
        If below 1, additionally require the Jaccard overlap of the two
        tags' item sets to be at most this value.  The default keeps the
        pure structural rule (including its false positives).

    Returns
    -------
    (pairs, levels):
        ``pairs`` is ``(n, 2)`` with ``pairs[:, 0] < pairs[:, 1]``;
        ``levels[k]`` is the taxonomy level of pair ``k``.
    """
    items_by_tag = None
    if item_tags is not None and max_item_overlap < 1.0:
        csc = sp.csc_matrix(item_tags)
        items_by_tag = [set(csc.indices[csc.indptr[t]:csc.indptr[t + 1]])
                        for t in range(taxonomy.n_tags)]

    pairs: List[Tuple[int, int]] = []
    levels: List[int] = []
    seen: set = set()
    for tag in range(taxonomy.n_tags):
        children_a = set(taxonomy.descendants(tag))
        for sib in taxonomy.siblings(tag):
            key = (min(tag, sib), max(tag, sib))
            if key in seen:
                continue
            seen.add(key)
            children_b = set(taxonomy.descendants(sib))
            if children_a & children_b:
                continue
            if items_by_tag is not None:
                set_a, set_b = items_by_tag[key[0]], items_by_tag[key[1]]
                union = len(set_a | set_b)
                if union > 0:
                    jaccard = len(set_a & set_b) / union
                    if jaccard > max_item_overlap:
                        continue
            pairs.append(key)
            levels.append(taxonomy.level(tag))
    if not pairs:
        return (np.zeros((0, 2), dtype=np.int64),
                np.zeros(0, dtype=np.int64))
    return np.asarray(pairs, dtype=np.int64), np.asarray(levels,
                                                         dtype=np.int64)


def extract_relations(taxonomy: Taxonomy, item_tags: sp.spmatrix,
                      max_item_overlap: float = 1.0) -> LogicalRelations:
    """Run all three extractors and bundle the result."""
    exclusion, levels = extract_exclusions(taxonomy, item_tags,
                                           max_item_overlap)
    return LogicalRelations(
        membership=extract_membership(item_tags),
        hierarchy=extract_hierarchy(taxonomy),
        exclusion=exclusion,
        exclusion_levels=levels,
    )
