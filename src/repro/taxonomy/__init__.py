"""Tag taxonomies and logical-relation extraction.

The paper derives three logical relations from an existing tag taxonomy plus
the item-tag matrix Q (Section IV-B, following Xiong et al.):

* **membership** — item *i* carries tag *t* (from Q);
* **hierarchy** — tag *t_child* is a child of *t_parent* in the taxonomy;
* **exclusion** — two tags share a parent and have no common child tag
  (the paper's noisy heuristic that LogiRec++ later refines).
"""

from repro.taxonomy.taxonomy import Taxonomy
from repro.taxonomy.builder import build_taxonomy_from_tags, taxonomy_quality
from repro.taxonomy.relations import (
    LogicalRelations,
    extract_relations,
    extract_exclusions,
    extract_hierarchy,
    extract_membership,
)

__all__ = [
    "Taxonomy",
    "LogicalRelations",
    "extract_relations",
    "extract_exclusions",
    "extract_hierarchy",
    "extract_membership",
    "build_taxonomy_from_tags",
    "taxonomy_quality",
]
