"""Dependency-free SVG rendering of Poincare-disk embeddings (Fig. 7/8).

The paper's Figures 7 and 8 are scatter plots of item embeddings in the
Poincare disk, colored by tag.  No plotting library is available offline,
so this module writes standalone SVG files: the unit circle, one dot per
item, a qualitative color per tag group, and an optional overlay of tag
regions (the enclosing-ball intersections with the disk).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

# A qualitative palette (cycled for > 12 groups).
PALETTE = ["#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
           "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
           "#1b9e77", "#7570b3"]


def _color(index: int) -> str:
    return PALETTE[index % len(PALETTE)]


def render_poincare_disk(coords: np.ndarray, labels: np.ndarray,
                         names: Optional[Sequence[str]] = None,
                         size: int = 480,
                         tag_regions: Optional[Dict[int, tuple]] = None,
                         title: str = "") -> str:
    """Return an SVG string of 2-D Poincare-disk points colored by label.

    Parameters
    ----------
    coords:
        ``(n, 2)`` coordinates with norms < 1.
    labels:
        ``(n,)`` integer group per point (``-1`` = unlabelled, gray).
    names:
        Optional legend names indexed by label id.
    size:
        SVG canvas edge in pixels.
    tag_regions:
        Optional ``{label: (o, r)}`` Euclidean ball overlays (the
        enclosing balls of tag hyperplanes), drawn as outline circles.
    """
    coords = np.asarray(coords, dtype=float)
    labels = np.asarray(labels)
    if coords.ndim != 2 or coords.shape[1] != 2:
        raise ValueError("coords must be (n, 2)")
    if len(coords) != len(labels):
        raise ValueError("labels length must match coords")
    half = size / 2.0
    radius = half * 0.92

    def to_px(xy):
        return half + xy[0] * radius, half - xy[1] * radius

    unique = [l for l in np.unique(labels) if l >= 0]
    color_of = {int(l): _color(i) for i, l in enumerate(unique)}

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" '
        f'height="{size}" viewBox="0 0 {size} {size}">',
        f'<rect width="{size}" height="{size}" fill="white"/>',
        f'<circle cx="{half}" cy="{half}" r="{radius}" fill="none" '
        f'stroke="#333" stroke-width="1.5"/>',
    ]
    if title:
        parts.append(f'<text x="{half}" y="18" text-anchor="middle" '
                     f'font-family="sans-serif" font-size="14">'
                     f'{title}</text>')
    if tag_regions:
        for label, (o, r) in tag_regions.items():
            cx, cy = to_px(np.asarray(o, dtype=float))
            parts.append(
                f'<circle cx="{cx:.1f}" cy="{cy:.1f}" '
                f'r="{float(r) * radius:.1f}" fill="none" '
                f'stroke="{color_of.get(int(label), "#999")}" '
                f'stroke-dasharray="4 3" stroke-width="1"/>')
    for xy, label in zip(coords, labels):
        cx, cy = to_px(xy)
        fill = color_of.get(int(label), "#cccccc")
        parts.append(f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="3" '
                     f'fill="{fill}" fill-opacity="0.8"/>')
    # Legend.
    if names is not None:
        y = 30
        for label in unique:
            name = names[int(label)] if int(label) < len(names) else str(
                label)
            parts.append(f'<circle cx="14" cy="{y}" r="4" '
                         f'fill="{color_of[int(label)]}"/>')
            parts.append(f'<text x="24" y="{y + 4}" '
                         f'font-family="sans-serif" font-size="11">'
                         f'{_escape(name)}</text>')
            y += 16
    parts.append("</svg>")
    return "\n".join(parts)


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def save_embedding_figure(model, dataset, path: str,
                          max_groups: int = 8, title: str = "") -> str:
    """Render a trained LogiRec-family model's item embeddings to SVG.

    Keeps only the ``max_groups`` most populated primary tags for a
    readable figure (the paper's figures similarly subset tags).
    Returns the path written.
    """
    from repro.experiments.figures import embedding_projection
    projection = embedding_projection(model, dataset)
    coords, labels = projection["coords"], projection["labels"].copy()
    keep, counts = np.unique(labels[labels >= 0], return_counts=True)
    top = set(keep[np.argsort(-counts)][:max_groups].tolist())
    labels = np.where(np.isin(labels, list(top)), labels, -1)
    svg = render_poincare_disk(
        coords, labels, names=dataset.taxonomy.names,
        title=title or f"{dataset.name}: item embeddings by tag")
    with open(path, "w") as f:
        f.write(svg)
    return path
