"""Wilcoxon signed-rank significance testing (Table II's ``*`` markers)."""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import stats


def wilcoxon_improvement(candidate: np.ndarray, baseline: np.ndarray,
                         alpha: float = 0.05) -> Tuple[bool, float]:
    """Test whether ``candidate``'s per-user metrics beat ``baseline``'s.

    Uses the one-sided Wilcoxon signed-rank test over paired per-user
    metric values, as in the paper.  Returns ``(significant, p_value)``.
    Ties on every pair (a degenerate case on tiny data) count as not
    significant.
    """
    candidate = np.asarray(candidate, dtype=np.float64)
    baseline = np.asarray(baseline, dtype=np.float64)
    if candidate.shape != baseline.shape:
        raise ValueError("paired samples must have identical shape")
    diff = candidate - baseline
    if np.allclose(diff, 0.0):
        return False, 1.0
    result = stats.wilcoxon(candidate, baseline, alternative="greater",
                            zero_method="wilcox")
    return bool(result.pvalue < alpha), float(result.pvalue)
