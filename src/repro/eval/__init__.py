"""Evaluation: full-ranking Recall@K / NDCG@K and significance testing.

The paper evaluates with *unsampled* metrics (citing Krichene & Rendle):
for each user every non-training item is ranked, so no sampled-candidate
bias is introduced.
"""

from repro.eval.metrics import (batch_ranking_metrics, ndcg_at_k,
                                recall_at_k, topk_indices)
from repro.eval.evaluator import Evaluator, EvaluationResult
from repro.eval.significance import wilcoxon_improvement
from repro.eval.extra_metrics import (
    average_precision_at_k,
    beyond_accuracy_report,
    catalog_coverage,
    exclusion_violation_at_k,
    precision_at_k,
    reciprocal_rank,
    tag_consistency_at_k,
)

__all__ = [
    "ndcg_at_k",
    "recall_at_k",
    "topk_indices",
    "batch_ranking_metrics",
    "Evaluator",
    "EvaluationResult",
    "wilcoxon_improvement",
    "precision_at_k",
    "average_precision_at_k",
    "reciprocal_rank",
    "catalog_coverage",
    "tag_consistency_at_k",
    "exclusion_violation_at_k",
    "beyond_accuracy_report",
]
