"""Evaluation harness: full ranking over all users with held-out items.

Models expose ``score_users(user_ids) -> (len(user_ids), n_items)`` score
matrices; the evaluator masks training items and computes per-user
Recall@K / NDCG@K vectors, which are also what the Wilcoxon significance
test consumes.

The hot path is fully vectorized: per user-batch it masks training items
through the CSR structure of the train matrix, takes the top ``max(ks)``
items with :func:`repro.eval.metrics.topk_indices` (``argpartition`` +
stable candidate sort), and reduces a boolean hit matrix into every
metric vector at once.  :meth:`Evaluator._reference_evaluate` keeps the
original per-user loop; the equivalence tests pin the vectorized path to
it bit-for-bit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.data.dataset import InteractionDataset, Split
from repro.eval.metrics import (batch_ranking_metrics, ndcg_at_k,
                                rank_items, recall_at_k, topk_indices)


def csr_row_coords(indptr: np.ndarray, indices: np.ndarray,
                   rows: np.ndarray):
    """``(local_row, column)`` coordinates of selected CSR rows' entries.

    Given the CSR structure of a user-item matrix and a batch of row ids,
    returns parallel arrays addressing every stored entry of those rows in
    a ``(len(rows), n_cols)`` dense batch — the shared primitive behind
    train-item masking in both the evaluator and the serving engine
    (``dense[local_row, column] = ...``).
    """
    rows = np.asarray(rows, dtype=np.int64)
    lo = indptr[rows]
    counts = indptr[rows + 1] - lo
    total = int(counts.sum())
    out_rows = np.repeat(np.arange(len(rows)), counts)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    cols = indices[np.arange(total) - np.repeat(starts, counts)
                   + np.repeat(lo, counts)]
    return out_rows, cols


@dataclass
class EvaluationResult:
    """Per-user metric vectors plus means, in percent (as the paper reports).

    ``per_user[metric]`` is an array over evaluated users; ``means[metric]``
    is its mean.  Metric keys look like ``"recall@10"``.
    """

    per_user: Dict[str, np.ndarray]
    user_ids: np.ndarray

    @property
    def means(self) -> Dict[str, float]:
        return {k: float(np.mean(v) * 100.0) for k, v in
                self.per_user.items()}

    def __getitem__(self, metric: str) -> float:
        return self.means[metric]

    def summary(self) -> str:
        parts = [f"{k}={v:.2f}" for k, v in sorted(self.means.items())]
        return " ".join(parts)


class Evaluator:
    """Evaluates a trained model on validation or test interactions.

    Parameters
    ----------
    dataset:
        The dataset (for ground-truth lookups).
    split:
        Temporal split; training items are masked from rankings.
    ks:
        Cutoffs, default (10, 20) as in the paper.
    batch_size:
        Users scored per ``score_users`` call.  Larger batches amortize
        model overhead at ``batch_size * n_items * 8`` bytes of score
        memory; benches tune this for the memory/speed trade-off.
    """

    def __init__(self, dataset: InteractionDataset, split: Split,
                 ks: Sequence[int] = (10, 20), batch_size: int = 256):
        self.dataset = dataset
        self.split = split
        self.ks = tuple(ks)
        self.batch_size = int(batch_size)
        self._train_items = dataset.items_of_user(split.train)
        self._valid_items = dataset.items_of_user(split.valid)
        self._test_items = dataset.items_of_user(split.test)
        train_matrix = dataset.interaction_matrix(split.train)
        self._train_indptr = train_matrix.indptr
        self._train_indices = train_matrix.indices

    def _eval_users(self, target_items: Dict[int, np.ndarray]) -> np.ndarray:
        return np.array(sorted(u for u, items in target_items.items()
                               if len(items) > 0), dtype=np.int64)

    def _train_coords(self, batch: np.ndarray):
        """(row, item) coordinates of the batch users' training items."""
        return csr_row_coords(self._train_indptr, self._train_indices,
                              batch)

    def _evaluate(self, model, target_items: Dict[int, np.ndarray],
                  batch_size: Optional[int] = None) -> EvaluationResult:
        batch_size = self.batch_size if batch_size is None else batch_size
        users = self._eval_users(target_items)
        kmax = max(self.ks)
        n_items = self.dataset.n_items
        chunks: List[Dict[str, np.ndarray]] = []
        # Phase accumulators: flushed as one pre-aggregated span per phase
        # so eval cost decomposes (model scoring vs. masking vs. ranking)
        # in the telemetry span tree.
        t_score = t_truth = t_topk = t_metrics = 0.0
        n_batches = 0
        with obs.trace("evaluate", n_users=int(len(users)),
                       ks=list(self.ks), batch_size=int(batch_size)):
            for start in range(0, len(users), batch_size):
                batch = users[start:start + batch_size]
                t0 = time.perf_counter()
                scores = np.array(model.score_users(batch), dtype=np.float64)
                t_score += time.perf_counter() - t0
                t0 = time.perf_counter()
                # Ground-truth membership matrix (duplicates collapse here;
                # the recall denominator counts unique truth items, train
                # overlap included, exactly as the reference's set() does).
                truth = np.zeros((len(batch), n_items), dtype=bool)
                t_rows = np.repeat(np.arange(len(batch)),
                                   [len(target_items[u]) for u in batch])
                truth[t_rows, np.concatenate(
                    [target_items[u] for u in batch])] = True
                truth_counts = truth.sum(axis=1)
                # Mask train items: out of the ranking, and never a hit.
                rows, cols = self._train_coords(batch)
                scores[rows, cols] = -np.inf
                truth[rows, cols] = False
                t_truth += time.perf_counter() - t0
                t0 = time.perf_counter()
                topk = topk_indices(scores, kmax)
                hits = np.take_along_axis(truth, topk, axis=1)
                t_topk += time.perf_counter() - t0
                t0 = time.perf_counter()
                chunks.append(
                    batch_ranking_metrics(hits, truth_counts, self.ks))
                t_metrics += time.perf_counter() - t0
                n_batches += 1
            if obs.enabled():
                obs.record_span("score_users", t_score, count=n_batches)
                obs.record_span("truth_mask", t_truth, count=n_batches)
                obs.record_span("topk", t_topk, count=n_batches)
                obs.record_span("metrics", t_metrics, count=n_batches)
                obs.observe("eval/users_per_call", float(len(users)))
        per_user = {name: np.concatenate([c[name] for c in chunks])
                    if chunks else np.zeros(0)
                    for name in [f"{m}@{k}" for k in self.ks
                                 for m in ("recall", "ndcg")]}
        return EvaluationResult(per_user=per_user, user_ids=users)

    def _reference_evaluate(self, model,
                            target_items: Dict[int, np.ndarray],
                            batch_size: int = 256) -> EvaluationResult:
        """Pre-vectorization per-user loop, kept as the equivalence oracle."""
        users = self._eval_users(target_items)
        metrics: Dict[str, List[float]] = {
            f"recall@{k}": [] for k in self.ks}
        metrics.update({f"ndcg@{k}": [] for k in self.ks})
        for start in range(0, len(users), batch_size):
            batch = users[start:start + batch_size]
            scores = model.score_users(batch)
            for row, u in enumerate(batch):
                truth = set(int(i) for i in target_items[u])
                exclude = set(int(i) for i in
                              self._train_items.get(u, ()))
                ranked = rank_items(scores[row], exclude)
                for k in self.ks:
                    metrics[f"recall@{k}"].append(
                        recall_at_k(ranked, truth, k))
                    metrics[f"ndcg@{k}"].append(ndcg_at_k(ranked, truth, k))
        per_user = {k: np.asarray(v) for k, v in metrics.items()}
        return EvaluationResult(per_user=per_user, user_ids=users)

    def evaluate_valid(self, model) -> EvaluationResult:
        return self._evaluate(model, self._valid_items)

    def evaluate_test(self, model) -> EvaluationResult:
        return self._evaluate(model, self._test_items)
