"""Evaluation harness: full ranking over all users with held-out items.

Models expose ``score_users(user_ids) -> (len(user_ids), n_items)`` score
matrices; the evaluator masks training items and computes per-user
Recall@K / NDCG@K vectors, which are also what the Wilcoxon significance
test consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.data.dataset import InteractionDataset, Split
from repro.eval.metrics import ndcg_at_k, rank_items, recall_at_k


@dataclass
class EvaluationResult:
    """Per-user metric vectors plus means, in percent (as the paper reports).

    ``per_user[metric]`` is an array over evaluated users; ``means[metric]``
    is its mean.  Metric keys look like ``"recall@10"``.
    """

    per_user: Dict[str, np.ndarray]
    user_ids: np.ndarray

    @property
    def means(self) -> Dict[str, float]:
        return {k: float(np.mean(v) * 100.0) for k, v in
                self.per_user.items()}

    def __getitem__(self, metric: str) -> float:
        return self.means[metric]

    def summary(self) -> str:
        parts = [f"{k}={v:.2f}" for k, v in sorted(self.means.items())]
        return " ".join(parts)


class Evaluator:
    """Evaluates a trained model on validation or test interactions.

    Parameters
    ----------
    dataset:
        The dataset (for ground-truth lookups).
    split:
        Temporal split; training items are masked from rankings.
    ks:
        Cutoffs, default (10, 20) as in the paper.
    """

    def __init__(self, dataset: InteractionDataset, split: Split,
                 ks: Sequence[int] = (10, 20)):
        self.dataset = dataset
        self.split = split
        self.ks = tuple(ks)
        self._train_items = dataset.items_of_user(split.train)
        self._valid_items = dataset.items_of_user(split.valid)
        self._test_items = dataset.items_of_user(split.test)

    def _evaluate(self, model, target_items: Dict[int, np.ndarray],
                  batch_size: int = 256) -> EvaluationResult:
        users = np.array(sorted(u for u, items in target_items.items()
                                if len(items) > 0), dtype=np.int64)
        metrics: Dict[str, List[float]] = {
            f"recall@{k}": [] for k in self.ks}
        metrics.update({f"ndcg@{k}": [] for k in self.ks})
        for start in range(0, len(users), batch_size):
            batch = users[start:start + batch_size]
            scores = model.score_users(batch)
            for row, u in enumerate(batch):
                truth = set(int(i) for i in target_items[u])
                exclude = set(int(i) for i in
                              self._train_items.get(u, ()))
                ranked = rank_items(scores[row], exclude)
                for k in self.ks:
                    metrics[f"recall@{k}"].append(
                        recall_at_k(ranked, truth, k))
                    metrics[f"ndcg@{k}"].append(ndcg_at_k(ranked, truth, k))
        per_user = {k: np.asarray(v) for k, v in metrics.items()}
        return EvaluationResult(per_user=per_user, user_ids=users)

    def evaluate_valid(self, model) -> EvaluationResult:
        return self._evaluate(model, self._valid_items)

    def evaluate_test(self, model) -> EvaluationResult:
        return self._evaluate(model, self._test_items)
