"""Ranking metrics: Recall@K and NDCG@K.

Both operate on a ranked list of item ids per user and the user's held-out
ground-truth set.  NDCG uses the standard binary-relevance formulation with
the ideal DCG computed from ``min(K, |ground truth|)`` hits.
"""

from __future__ import annotations

from typing import Sequence, Set

import numpy as np


def recall_at_k(ranked_items: np.ndarray, ground_truth: Set[int],
                k: int) -> float:
    """Fraction of the ground-truth items present in the top-K."""
    if not ground_truth:
        raise ValueError("ground_truth must be non-empty")
    top_k = ranked_items[:k]
    hits = sum(1 for item in top_k if int(item) in ground_truth)
    return hits / len(ground_truth)


def ndcg_at_k(ranked_items: np.ndarray, ground_truth: Set[int],
              k: int) -> float:
    """Binary-relevance NDCG@K."""
    if not ground_truth:
        raise ValueError("ground_truth must be non-empty")
    top_k = ranked_items[:k]
    gains = np.array([1.0 if int(item) in ground_truth else 0.0
                      for item in top_k])
    discounts = 1.0 / np.log2(np.arange(2, len(top_k) + 2))
    dcg = float(np.sum(gains * discounts))
    ideal_hits = min(k, len(ground_truth))
    idcg = float(np.sum(1.0 / np.log2(np.arange(2, ideal_hits + 2))))
    return dcg / idcg


def rank_items(scores: np.ndarray, exclude: Set[int]) -> np.ndarray:
    """Rank all items by descending score, removing excluded (train) items."""
    order = np.argsort(-scores, kind="stable")
    if not exclude:
        return order
    mask = np.isin(order, np.fromiter(exclude, dtype=np.int64),
                   invert=True)
    return order[mask]
