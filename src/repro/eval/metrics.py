"""Ranking metrics: Recall@K and NDCG@K.

Two API layers live here:

* scalar reference functions (:func:`recall_at_k`, :func:`ndcg_at_k`,
  :func:`rank_items`) operating on one user's ranked list — simple,
  obviously-correct implementations that the vectorized evaluator is
  equivalence-tested against;
* batched helpers (:func:`topk_indices`, :func:`batch_ranking_metrics`)
  operating on a ``(batch, n_items)`` score matrix at once — the hot
  path used by :class:`repro.eval.Evaluator` for full-ranking
  evaluation.

NDCG uses the standard binary-relevance formulation with the ideal DCG
computed from ``min(K, |ground truth|)`` hits.  The batched helpers are
bit-identical to the scalar ones (same tie-breaking, same float64
summation order), which matters because the Wilcoxon significance test
consumes the per-user metric vectors.
"""

from __future__ import annotations

from typing import Dict, Sequence, Set

import numpy as np


def recall_at_k(ranked_items: np.ndarray, ground_truth: Set[int],
                k: int) -> float:
    """Fraction of the ground-truth items present in the top-K."""
    if not ground_truth:
        raise ValueError("ground_truth must be non-empty")
    top_k = ranked_items[:k]
    hits = sum(1 for item in top_k if int(item) in ground_truth)
    return hits / len(ground_truth)


def ndcg_at_k(ranked_items: np.ndarray, ground_truth: Set[int],
              k: int) -> float:
    """Binary-relevance NDCG@K."""
    if not ground_truth:
        raise ValueError("ground_truth must be non-empty")
    top_k = ranked_items[:k]
    gains = np.array([1.0 if int(item) in ground_truth else 0.0
                      for item in top_k])
    discounts = 1.0 / np.log2(np.arange(2, len(top_k) + 2))
    dcg = float(np.sum(gains * discounts))
    ideal_hits = min(k, len(ground_truth))
    idcg = float(np.sum(1.0 / np.log2(np.arange(2, ideal_hits + 2))))
    return dcg / idcg


def rank_items(scores: np.ndarray, exclude: Set[int]) -> np.ndarray:
    """Rank all items by descending score, removing excluded (train) items."""
    order = np.argsort(-scores, kind="stable")
    if not exclude:
        return order
    mask = np.isin(order, np.fromiter(exclude, dtype=np.int64),
                   invert=True)
    return order[mask]


# ----------------------------------------------------------------------
# Batched helpers (the evaluation hot path)
# ----------------------------------------------------------------------
def topk_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Top-K item ids per row, exactly matching a stable full sort.

    Equivalent to ``np.argsort(-scores, axis=-1, kind="stable")[..., :k]``
    — descending score with ties broken by ascending item id — but costs
    ``O(n + m log m)`` per row (``m`` = candidate count, usually ``k``)
    instead of ``O(n log n)``, via ``np.partition`` for the K-th score
    threshold plus a stable sort of only the at-or-above-threshold
    candidates.  Accepts a 1-D score vector or a ``(batch, n)`` matrix.
    """
    scores = np.asarray(scores)
    single = scores.ndim == 1
    if single:
        scores = scores[None, :]
    n_rows, n = scores.shape
    if k >= n or n_rows == 0:
        out = np.argsort(-scores, axis=1, kind="stable")[:, :k]
        return out[0] if single else out
    # Value of the K-th largest score per row; every item scoring >= it is
    # a candidate.  Boundary ties make rows have more than K candidates.
    kth = np.partition(scores, n - k, axis=1)[:, n - k]
    ge = scores >= kth[:, None]
    counts = ge.sum(axis=1)
    width = int(counts.max())
    rows, cols = np.nonzero(ge)  # cols ascend within each row
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    slot = np.arange(rows.size) - np.repeat(starts, counts)
    cand = np.full((n_rows, width), n, dtype=np.int64)
    cand[rows, slot] = cols
    cand_scores = np.full((n_rows, width), -np.inf)
    cand_scores[rows, slot] = scores[rows, cols]
    # Candidates are stored in ascending-id order, so a stable sort on
    # descending score reproduces the full stable argsort's tie-breaking;
    # padding sits at -inf behind every row's >= K real candidates.
    order = np.argsort(-cand_scores, axis=1, kind="stable")[:, :k]
    out = np.take_along_axis(cand, order, axis=1)
    return out[0] if single else out


def ideal_dcg_table(k: int) -> np.ndarray:
    """``table[m]`` = ideal DCG for ``m`` hits, ``m`` in ``0..k``.

    Entry ``m`` is computed with the exact expression (and float64
    summation order) of :func:`ndcg_at_k`, keeping batched NDCG
    bit-identical to the scalar reference.
    """
    table = np.empty(k + 1)
    table[0] = np.inf  # never used: ground truth is non-empty
    for m in range(1, k + 1):
        table[m] = np.sum(1.0 / np.log2(np.arange(2, m + 2)))
    return table


def batch_ranking_metrics(hits: np.ndarray, truth_counts: np.ndarray,
                          ks: Sequence[int]) -> Dict[str, np.ndarray]:
    """Recall@K / NDCG@K vectors from a boolean hit matrix.

    ``hits[u, r]`` says whether the item at rank ``r`` (of the top
    ``max(ks)``) is a ground-truth item for user ``u``; ``truth_counts``
    holds ``|ground truth|`` per user.  Returns ``{"recall@k": vec,
    "ndcg@k": vec}`` identical to looping the scalar metrics.
    """
    hits = np.asarray(hits, dtype=bool)
    truth_counts = np.asarray(truth_counts, dtype=np.int64)
    kmax = max(ks) if len(ks) else 0
    discounts = 1.0 / np.log2(np.arange(2, kmax + 2))
    out: Dict[str, np.ndarray] = {}
    for k in ks:
        hits_k = hits[:, :k]
        out[f"recall@{k}"] = hits_k.sum(axis=1) / truth_counts
        dcg = (hits_k * discounts[:hits_k.shape[1]]).sum(axis=1)
        idcg = ideal_dcg_table(k)[np.minimum(truth_counts, k)]
        out[f"ndcg@{k}"] = dcg / idcg
    return out
