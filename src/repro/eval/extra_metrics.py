"""Additional ranking and beyond-accuracy metrics.

The paper reports Recall@K and NDCG@K; a production deployment of a
recommender also tracks precision-family metrics and beyond-accuracy
qualities.  Two of these connect directly to the paper's claims:

* :func:`tag_consistency_at_k` quantifies "consistent recommendations
  that respect the logical constraints" (Section I): the fraction of
  recommended items whose tags the user has interacted with (or an
  ancestor thereof);
* :func:`exclusion_violation_at_k` counts recommendations carrying a tag
  *exclusive* to the user's dominant tags — the `<Classical>`-to-a-rock-
  fan mistakes the paper's Fig. 1 motivates skipping.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.taxonomy import LogicalRelations, Taxonomy


def precision_at_k(ranked_items: np.ndarray, ground_truth: Set[int],
                   k: int) -> float:
    """Fraction of the top-K that are ground-truth items."""
    if not ground_truth:
        raise ValueError("ground_truth must be non-empty")
    top_k = ranked_items[:k]
    hits = sum(1 for item in top_k if int(item) in ground_truth)
    return hits / k


def average_precision_at_k(ranked_items: np.ndarray,
                           ground_truth: Set[int], k: int) -> float:
    """AP@K: mean of precision values at every hit position."""
    if not ground_truth:
        raise ValueError("ground_truth must be non-empty")
    hits = 0
    precision_sum = 0.0
    for rank, item in enumerate(ranked_items[:k], start=1):
        if int(item) in ground_truth:
            hits += 1
            precision_sum += hits / rank
    denom = min(k, len(ground_truth))
    return precision_sum / denom


def reciprocal_rank(ranked_items: np.ndarray,
                    ground_truth: Set[int]) -> float:
    """1 / rank of the first relevant item (0 if none appears)."""
    if not ground_truth:
        raise ValueError("ground_truth must be non-empty")
    for rank, item in enumerate(ranked_items, start=1):
        if int(item) in ground_truth:
            return 1.0 / rank
    return 0.0


def catalog_coverage(recommendation_lists: Iterable[np.ndarray],
                     n_items: int) -> float:
    """Fraction of the catalog appearing in at least one top-K list."""
    seen: Set[int] = set()
    for items in recommendation_lists:
        seen.update(int(i) for i in items)
    return len(seen) / n_items


def tag_consistency_at_k(ranked_items: np.ndarray,
                         user_tags: Set[int],
                         dataset: InteractionDataset, k: int) -> float:
    """Fraction of top-K items sharing at least one tag (or a tag whose
    ancestor) the user has interacted with.

    High consistency is the behaviour the logical constraints are meant to
    produce — recommendations stay within the user's tag neighbourhood.
    """
    if not user_tags:
        return 0.0
    taxonomy = dataset.taxonomy
    expanded: Set[int] = set()
    for t in user_tags:
        expanded.add(int(t))
        expanded.update(taxonomy.ancestors(int(t)))
    top_k = ranked_items[:k]
    tag_lists = dataset.tags_of_items(np.asarray(top_k))
    consistent = 0
    for tags in tag_lists:
        item_tags = set(int(t) for t in tags)
        item_expanded = set(item_tags)
        for t in item_tags:
            item_expanded.update(taxonomy.ancestors(t))
        if item_expanded & expanded:
            consistent += 1
    return consistent / len(top_k) if len(top_k) else 0.0


def exclusion_violation_at_k(ranked_items: np.ndarray,
                             user_tags: Set[int],
                             dataset: InteractionDataset, k: int) -> float:
    """Fraction of top-K items carrying a tag exclusive to a user tag.

    This is the paper's Fig. 1 failure mode made measurable: a rock-only
    listener being recommended items under `<Classical>`.  Logic-aware
    models should push it toward zero.
    """
    if not user_tags:
        return 0.0
    exclusions = dataset.relations.exclusion_set()
    user_tag_ints = {int(t) for t in user_tags}
    top_k = ranked_items[:k]
    tag_lists = dataset.tags_of_items(np.asarray(top_k))
    violations = 0
    for tags in tag_lists:
        violated = any(
            frozenset((int(t), u)) in exclusions
            for t in tags for u in user_tag_ints)
        if violated:
            violations += 1
    return violations / len(top_k) if len(top_k) else 0.0


def beyond_accuracy_report(model, dataset: InteractionDataset,
                           split, k: int = 10,
                           max_users: int = 200) -> Dict[str, float]:
    """One-call report of the extra metrics for a trained model."""
    train_items = dataset.items_of_user(split.train)
    test_items = dataset.items_of_user(split.test)
    users = sorted(u for u, items in test_items.items()
                   if len(items) > 0)[:max_users]
    from repro.eval.metrics import rank_items

    per_metric: Dict[str, list] = {
        "precision": [], "map": [], "mrr": [],
        "tag_consistency": [], "exclusion_violation": []}
    rec_lists = []
    for u in users:
        scores = model.score_users(np.array([u]))[0]
        exclude = set(int(i) for i in train_items.get(u, ()))
        ranked = rank_items(scores, exclude)
        truth = set(int(i) for i in test_items[u])
        user_tag_arrays = dataset.tags_of_items(
            np.asarray(train_items.get(u, np.zeros(0, np.int64))))
        user_tags = set()
        for arr in user_tag_arrays:
            user_tags.update(int(t) for t in arr)
        per_metric["precision"].append(
            precision_at_k(ranked, truth, k))
        per_metric["map"].append(
            average_precision_at_k(ranked, truth, k))
        per_metric["mrr"].append(reciprocal_rank(ranked, truth))
        per_metric["tag_consistency"].append(
            tag_consistency_at_k(ranked, user_tags, dataset, k))
        per_metric["exclusion_violation"].append(
            exclusion_violation_at_k(ranked, user_tags, dataset, k))
        rec_lists.append(ranked[:k])
    report = {name: float(np.mean(values))
              for name, values in per_metric.items()}
    report["catalog_coverage"] = catalog_coverage(rec_lists,
                                                  dataset.n_items)
    return report
