"""Music-catalog scenario: the paper's Fig. 1 worked end-to-end.

Builds the exact taxonomy of the paper's introduction (<Rock>,
<Classical>, <Punk Rock>, <Alternative Rock>, <British/American
Alternative>, ...), plants users shaped like the paper's Tom / Linda /
Lisa (diverse vs consistent vs fine-grained), trains LogiRec++, and shows:

* that the consistency weight CON separates Linda-like from Tom-like users;
* that granularity GR separates Lisa-like (deep-focus) users;
* which logical relations the model softened (relation mining).

Run:
    python examples/music_catalog.py
"""

import numpy as np
import scipy.sparse as sp

from repro.core import LogiRecConfig, LogiRecPP
from repro.data import InteractionDataset, temporal_split
from repro.taxonomy import Taxonomy, extract_relations

NAMES = ["<Music>", "<Rock>", "<Classical>", "<Punk Rock>",
         "<Alternative Rock>", "<Ballets & Dances>",
         "<British Alternative>", "<American Alternative>"]
PARENTS = [-1, 0, 0, 1, 1, 2, 4, 4]
LEAVES = [3, 5, 6, 7]  # Punk, Ballets, British Alt, American Alt

N_ITEMS_PER_LEAF = 15
N_USERS_PER_TYPE = 12
INTERACTIONS_PER_USER = 12


def build_dataset(seed: int = 0) -> InteractionDataset:
    rng = np.random.default_rng(seed)
    taxonomy = Taxonomy(PARENTS, NAMES)
    n_items = N_ITEMS_PER_LEAF * len(LEAVES)

    # Items: each leaf owns a block; items carry leaf + all ancestors.
    rows, cols = [], []
    item_leaf = {}
    for block, leaf in enumerate(LEAVES):
        for offset in range(N_ITEMS_PER_LEAF):
            item = block * N_ITEMS_PER_LEAF + offset
            item_leaf[item] = leaf
            for tag in [leaf] + taxonomy.ancestors(leaf):
                rows.append(item)
                cols.append(tag)
    q = sp.coo_matrix((np.ones(len(rows)), (rows, cols)),
                      shape=(n_items, taxonomy.n_tags)).tocsr()

    # Three planted user archetypes:
    #   Tom:   diverse — items from every leaf (exclusions everywhere);
    #   Linda: consistent within <Rock> (Punk + both Alternatives);
    #   Lisa:  fine-grained — only <British Alternative>.
    leaf_items = {leaf: [i for i, l in item_leaf.items() if l == leaf]
                  for leaf in LEAVES}
    rock_leaves = [3, 6, 7]
    archetypes = {
        "tom": lambda: rng.choice(LEAVES),
        "linda": lambda: rng.choice(rock_leaves),
        "lisa": lambda: 6,
    }
    users, items, times = [], [], []
    user_type = []
    uid = 0
    for kind, pick_leaf in archetypes.items():
        for _ in range(N_USERS_PER_TYPE):
            chosen = set()
            t = 0
            while len(chosen) < INTERACTIONS_PER_USER:
                item = int(rng.choice(leaf_items[int(pick_leaf())]))
                if item in chosen:
                    continue
                chosen.add(item)
                users.append(uid)
                items.append(item)
                times.append(t)
                t += 1
            user_type.append(kind)
            uid += 1

    dataset = InteractionDataset(
        np.asarray(users), np.asarray(items), np.asarray(times),
        n_users=uid, n_items=n_items, item_tags=q, taxonomy=taxonomy,
        relations=extract_relations(taxonomy, q), name="music")
    dataset.user_type = user_type
    return dataset


def main() -> None:
    dataset = build_dataset()
    split = temporal_split(dataset)
    print("Logical relations extracted:", dataset.relations.counts)
    exclusive = [(dataset.taxonomy.names[i], dataset.taxonomy.names[j])
                 for i, j in dataset.relations.exclusion]
    print("Exclusive tag pairs:", exclusive)

    config = LogiRecConfig(dim=8, epochs=150, lam=1.0, seed=0)
    model = LogiRecPP(dataset.n_users, dataset.n_items, dataset.n_tags,
                      config)
    model.fit(dataset, split)

    weights = model.user_weights()
    kinds = np.asarray(dataset.user_type)
    print("\nBehaviour-driven weights by planted archetype "
          "(mean over users):")
    for kind in ("tom", "linda", "lisa"):
        mask = kinds == kind
        print(f"  {kind:6s} CON={weights['con'][mask].mean():.3f} "
              f"GR={weights['gr'][mask].mean():.3f} "
              f"alpha={weights['alpha'][mask].mean():.3f}")
    print("Expected: Tom (diverse) lowest CON and lowest overall weight "
          "alpha; Linda and Lisa progressively higher alpha.")

    # Relation-mining readout: Punk vs Alternative (both rebellious rock)
    # should end up less separated than Rock vs Classical.
    margins = model.exclusion_margins()
    pairs = dataset.relations.exclusion
    by_name = {}
    for (i, j), margin in zip(pairs, margins):
        key = (dataset.taxonomy.names[i], dataset.taxonomy.names[j])
        by_name[key] = margin
    print("\nGeometric separation per exclusive pair "
          "(higher = more exclusive):")
    for key, margin in sorted(by_name.items(), key=lambda kv: -kv[1]):
        print(f"  {key[0]} vs {key[1]}: {margin:+.3f}")

    # A Linda-like user must not be recommended <Classical> items.
    linda = int(np.where(kinds == "linda")[0][0])
    seen = dataset.items_of_user(split.train).get(linda, [])
    recs = model.recommend(linda, k=8, exclude=seen)
    classical_items = {i for i in range(dataset.n_items)
                       if dataset.item_tags[i, 2] > 0}
    hits = len(set(recs.tolist()) & classical_items)
    print(f"\nLinda-like user top-8: {recs.tolist()} — "
          f"{hits} classical items recommended (want 0 or near 0)")


if __name__ == "__main__":
    main()
