"""Relation-mining scenario: recovering mislabelled exclusions.

The structural extraction rule calls sibling tags "exclusive" whenever
they share no child tag — even when their item sets genuinely overlap
(the paper's <Heavy Metal> vs <Metal> example).  This script plants a
large fraction of such overlapping sibling pairs, trains LogiRec (no
mining) and LogiRec++ (with mining), and measures how well each model's
learned geometry distinguishes truly exclusive pairs from mislabelled
ones — the quantitative core of the paper's Fig. 7/8 and case studies.

Run:
    python examples/relation_mining.py
"""

import numpy as np

from repro.core import LogiRec, LogiRecConfig, LogiRecPP
from repro.data import SyntheticConfig, generate_dataset, temporal_split
from repro.experiments import tag_separation_scores
from repro.eval import Evaluator


def margin_split(model, dataset):
    """Mean geometric exclusion margin for true vs mislabelled pairs."""
    margins = model.exclusion_margins()
    pairs = dataset.relations.exclusion
    overlap = {frozenset(map(int, p)) for p in dataset.overlapping_pairs}
    flags = np.array([frozenset(map(int, p)) in overlap for p in pairs])
    return margins[~flags].mean(), margins[flags].mean()


def main() -> None:
    dataset = generate_dataset(SyntheticConfig(
        name="noisy-taxonomy", n_users=200, n_items=300, depth=4,
        branching=3, n_roots=2, mean_interactions=14.0,
        overlap_pair_frac=0.4, overlap_item_frac=0.6, seed=21))
    split = temporal_split(dataset)
    evaluator = Evaluator(dataset, split)
    n_overlap = len(dataset.overlapping_pairs)
    n_total = len(dataset.relations.exclusion)
    print(f"Planted {n_overlap} overlapping (mislabelled-exclusive) "
          f"sibling pairs out of {n_total} extracted exclusions.\n")

    config = LogiRecConfig(dim=16, epochs=150, lam=2.0, seed=0)
    results = {}
    for name, cls in [("LogiRec", LogiRec), ("LogiRec++", LogiRecPP)]:
        model = cls(dataset.n_users, dataset.n_items, dataset.n_tags,
                    config)
        model.fit(dataset, split, evaluator=evaluator)
        true_m, overlap_m = margin_split(model, dataset)
        test = evaluator.evaluate_test(model)
        separation = tag_separation_scores(model, dataset)
        results[name] = (true_m, overlap_m, test, separation)
        print(f"{name}:")
        print(f"  exclusion margin  true pairs: {true_m:+.3f}   "
              f"mislabelled pairs: {overlap_m:+.3f}   "
              f"gap: {true_m - overlap_m:+.3f}")
        print(f"  item-cluster separation  true: "
              f"{separation['mean_true_exclusive']:+.3f}   "
              f"mislabelled: {separation['mean_overlapping']:+.3f}")
        print(f"  test metrics: {test.summary()}\n")

    gap_plain = results["LogiRec"][0] - results["LogiRec"][1]
    gap_pp = results["LogiRec++"][0] - results["LogiRec++"][1]
    print("Mining effect (margin gap true-vs-mislabelled): "
          f"LogiRec {gap_plain:+.3f} -> LogiRec++ {gap_pp:+.3f}")
    print("A larger gap means the model learned to keep genuine "
          "exclusions apart while letting mislabelled ones overlap — "
          "the paper's 'refined logical relations'.")


if __name__ == "__main__":
    main()
