"""Quickstart: train LogiRec++ on a synthetic CD-like dataset and inspect
its recommendations, logical relations, and user weights.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro.core import LogiRecConfig, LogiRecPP
from repro.data import load_dataset, temporal_split
from repro.eval import Evaluator


def main() -> None:
    # 1. Data: a bench-scale synthetic mirror of Amazon CDs & Vinyl, with
    #    a 4-level tag taxonomy and the paper's 60/20/20 temporal split.
    dataset = load_dataset("cd")
    split = temporal_split(dataset)
    print("Dataset:", dataset)
    print("Table-I statistics:", dataset.statistics())

    # 2. Model: LogiRec++ with the tuned defaults (tangent-space
    #    parameterization, Adam, lambda = 5 on cd).
    config = LogiRecConfig(dim=16, epochs=120, lam=5.0, seed=0)
    model = LogiRecPP(dataset.n_users, dataset.n_items, dataset.n_tags,
                      config)

    # 3. Train with validation-based best-epoch selection.
    evaluator = Evaluator(dataset, split)
    model.fit(dataset, split, evaluator=evaluator)

    # 4. Evaluate on the held-out test interactions (full ranking).
    result = evaluator.evaluate_test(model)
    print("\nTest metrics (%):", result.summary())

    # 5. Recommend for one user, masking training items.
    user = int(result.user_ids[0])
    seen = dataset.items_of_user(split.train).get(user, [])
    recommendations = model.recommend(user, k=5, exclude=seen)
    taxonomy = dataset.taxonomy
    print(f"\nTop-5 for user {user}:")
    for item in recommendations:
        tags = dataset.tags_of_items(np.array([item]))[0]
        names = ", ".join(taxonomy.names[t] for t in tags)
        print(f"  item {item:4d}  tags: {names}")

    # 6. Inspect the behaviour-driven weights of Eq. 12-14.
    weights = model.user_weights()
    print(f"\nUser {user}: CON={weights['con'][user]:.2f} "
          f"GR={weights['gr'][user]:.2f} alpha={weights['alpha'][user]:.2f}")

    # 7. Relation mining readout: which structurally "exclusive" tag pairs
    #    did training decide to soften (negative margin = overlapping)?
    margins = model.exclusion_margins()
    softened = int((margins < 0).sum())
    print(f"\nExclusive tag pairs softened by training: "
          f"{softened}/{len(margins)}")

    # 8. Render the Fig. 7/8-style embedding scatter to a standalone SVG.
    from repro.viz import save_embedding_figure
    figure_path = save_embedding_figure(model, dataset,
                                        "quickstart_embeddings.svg")
    print(f"Embedding figure written to {figure_path}")


if __name__ == "__main__":
    main()
