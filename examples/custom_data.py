"""Bring-your-own-data scenario: CSV ingestion + automatic taxonomy.

Shows the full adoption path for a user who has flat interaction and
item-tag CSV files but *no* tag taxonomy:

1. ingest ``user,item,timestamp`` and ``item,tag`` CSVs;
2. build a taxonomy automatically from tag co-occurrence (subsumption);
3. extract the logical relations;
4. train LogiRec++ and evaluate.

Run:
    python examples/custom_data.py
"""

import pathlib
import tempfile

import numpy as np

from repro.core import LogiRecConfig, LogiRecPP
from repro.data import (dataset_from_frames, read_interactions_csv,
                        read_item_tags_csv, temporal_split)
from repro.data import SyntheticConfig, generate_dataset
from repro.eval import Evaluator, beyond_accuracy_report
from repro.taxonomy import build_taxonomy_from_tags, taxonomy_quality


def export_reference_csvs(directory: pathlib.Path):
    """Write a synthetic dataset out as flat CSVs (stand-in for the
    user's real data) and return the ground-truth taxonomy."""
    reference = generate_dataset(SyntheticConfig(
        name="export", n_users=120, n_items=200, depth=3, branching=3,
        mean_interactions=14.0, ancestor_prob=0.95, extra_tag_prob=0.0,
        seed=33))
    inter = directory / "interactions.csv"
    with open(inter, "w") as f:
        f.write("user,item,timestamp\n")
        for u, i, t in zip(reference.user_ids, reference.item_ids,
                           reference.timestamps):
            f.write(f"u{u},i{i},{t}\n")
    tags = directory / "item_tags.csv"
    coo = reference.item_tags.tocoo()
    with open(tags, "w") as f:
        f.write("item,tag\n")
        for i, t in zip(coo.row, coo.col):
            f.write(f"i{i},t{t}\n")
    return inter, tags, reference


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        directory = pathlib.Path(tmp)
        inter_csv, tags_csv, reference = export_reference_csvs(directory)

        # 1. Ingest flat CSVs with dense id remapping.
        users, items, times, user_map, item_map = read_interactions_csv(
            str(inter_csv))
        q, tag_map = read_item_tags_csv(str(tags_csv), item_map)
        print(f"Ingested {len(users)} interactions, "
              f"{len(user_map)} users, {len(item_map)} items, "
              f"{len(tag_map)} tags.")

        # 2. No taxonomy supplied: build one from co-occurrence.
        taxonomy = build_taxonomy_from_tags(q, subsumption_threshold=0.7)
        quality = taxonomy_quality(taxonomy, reference.taxonomy)
        print(f"Auto-built taxonomy: depth={taxonomy.depth}, "
              f"{len(taxonomy.roots)} roots; vs ground truth "
              f"precision={quality['precision']:.2f} "
              f"recall={quality['recall']:.2f}")

        # 3. Assemble the dataset; relations are extracted automatically.
        dataset = dataset_from_frames(users, items, times, q, taxonomy,
                                      name="custom")
        print("Extracted relations:", dataset.relations.counts)

        # 4. Train and evaluate.
        split = temporal_split(dataset)
        evaluator = Evaluator(dataset, split)
        model = LogiRecPP(dataset.n_users, dataset.n_items,
                          dataset.n_tags,
                          LogiRecConfig(dim=16, epochs=120, lam=1.0,
                                        seed=0))
        model.fit(dataset, split, evaluator=evaluator)
        print("Test metrics:", evaluator.evaluate_test(model).summary())
        report = beyond_accuracy_report(model, dataset, split, k=10)
        print("Beyond-accuracy:",
              {k: round(v, 3) for k, v in report.items()})


if __name__ == "__main__":
    main()
