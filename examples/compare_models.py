"""Model comparison: a small Table-II style bake-off on one dataset.

Trains a representative subset of the paper's baselines plus LogiRec and
LogiRec++ on the ciao config and prints Recall/NDCG@{10,20} with the
Wilcoxon significance marker.

Run:
    python examples/compare_models.py [dataset] [--fast]
"""

import sys
import time

from repro.experiments import (format_comparison_table, run_comparison)

DEFAULT_MODELS = ["BPRMF", "CML", "LightGCN", "AGCN", "HGCF", "HRCF",
                  "LogiRec", "LogiRec++"]


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 and not sys.argv[1].startswith(
        "--") else "ciao"
    fast = "--fast" in sys.argv
    start = time.time()
    results = run_comparison(
        model_names=DEFAULT_MODELS,
        dataset_names=[dataset],
        seeds=(0,),
        epochs_override=40 if fast else None,
    )
    print(format_comparison_table(results))
    print(f"done in {time.time() - start:.0f}s"
          + (" (fast mode: 40 epochs/model)" if fast else ""))


if __name__ == "__main__":
    main()
