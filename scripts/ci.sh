#!/usr/bin/env bash
# CI gate for the repro package:
#   1. lint  — no bare print() in library code (cli.py is the
#              presentation layer and is allowlisted);
#   2. tests — the tier-1 pytest suite;
#   3. smoke — a tiny --telemetry training run must leave a readable
#              manifest + event log that `repro obs summarize` renders;
#   4. serve — train --save, export an index, and answer queries:
#              output must be non-empty and deterministic across runs;
#   5. fault — injected NaN at epoch 2 must roll back and still
#              complete; a killed run must resume to completion;
#              injected scoring failures must degrade to fallbacks
#              with zero unhandled exceptions; a corrupted checkpoint
#              must be rejected;
#   6. backend — a 2-epoch train on the fast tensor backend must run
#              end to end and agree with the reference backend's
#              losses within tolerance on a tiny config;
#   7. observability — a traced+profiled serve bench must yield a run
#              dir from which export-trace emits valid Chrome trace
#              JSON, `obs slo` exits 0 on the built-in objectives,
#              `obs summarize --json` parses, and `obs profile`
#              renders samples.  The <2% disabled-telemetry overhead
#              budget stays asserted by tests/test_obs.py in gate 2.
#   8. frontend — the multi-worker HTTP front-end over a saved index:
#              2 workers serve /recommend, /status shows every shard
#              ready, SIGTERM drains to exit 0 with clean /dev/shm;
#              then a traced worker-kill drill must answer every
#              request (degraded allowed, errors not), restart the
#              worker, pass `obs slo`, and export a valid trace.
#   9. online — a full ingest→finetune→swap cycle on the synthetic
#              dataset must leave a fresh index version live with
#              streamed-in cold-start users servable; scoring faults
#              fired inside the swap window must be carried by
#              degraded-mode (stale-index) serving with clean
#              recovery on the next swap; a poisoned event stream
#              must be rejected with a typed error and no dataset
#              mutation.
#  10. experiments — a tiny 2-model × 1-dataset × 2-seed spec run
#              through `repro exp run` twice: the second run must
#              report 100% cache hits and zero retrains; `exp status`
#              must honor its exit-code contract (0 complete /
#              1 partial / 2 nothing run).
#
# Usage: bash scripts/ci.sh            (from the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src

echo "== lint: no print() outside the CLI presentation layer =="
violations=$(grep -rn --include='*.py' '^[^#]*\bprint(' src/repro \
    | grep -v '^src/repro/cli\.py:' || true)
if [ -n "$violations" ]; then
    echo "bare print() in library code (use repro.obs.get_logger):"
    echo "$violations"
    exit 1
fi
echo "ok"

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== telemetry smoke =="
smoke_dir=$(mktemp -d)
server_pid=""
trap '[ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null; \
     rm -rf "$smoke_dir"' EXIT
python -m repro train BPRMF --dataset cd --epochs 2 \
    --telemetry --run-dir "$smoke_dir/runs"
run_dir=$(ls -d "$smoke_dir"/runs/*/ | head -n 1)
test -s "$run_dir/events.jsonl"
test -s "$run_dir/manifest.json"
summary=$(python -m repro obs summarize "$run_dir")
echo "$summary" | head -n 20
echo "$summary" | grep -q "span tree:"
echo "$summary" | grep -q "coverage:"
echo "ok"

echo "== serving smoke =="
python -m repro train BPRMF --dataset cd --epochs 2 \
    --save "$smoke_dir/ck"
python -m repro serve export "$smoke_dir/ck" --out "$smoke_dir/index"
python -m repro serve query "$smoke_dir/index" --users 0,1,2,3,4 \
    > "$smoke_dir/q1.txt"
python -m repro serve query "$smoke_dir/index" --users 0,1,2,3,4 \
    --no-cache > "$smoke_dir/q2.txt"
test "$(wc -l < "$smoke_dir/q1.txt")" -eq 5
grep -q "user 0: [0-9]" "$smoke_dir/q1.txt"
cmp "$smoke_dir/q1.txt" "$smoke_dir/q2.txt"
echo "ok"

echo "== fault-injection smoke =="
# NaN gradient at epoch 2: rollback must recover and the run complete.
python -m repro robust inject train --epochs 4 --nan-epoch 2 \
    --checkpoint-dir "$smoke_dir/rck" > "$smoke_dir/f1.txt"
grep -q "completed" "$smoke_dir/f1.txt"
grep -q "rollbacks: 1" "$smoke_dir/f1.txt"

# Kill after epoch 1 (exit 3 by contract), then --resume to completion.
rm -rf "$smoke_dir/rck"
set +e
python -m repro robust inject train --epochs 4 --kill-epoch 1 \
    --checkpoint-dir "$smoke_dir/rck" > "$smoke_dir/f2.txt"
kill_status=$?
set -e
test "$kill_status" -eq 3
grep -q "crashed" "$smoke_dir/f2.txt"
python -m repro robust inject train --epochs 4 --resume \
    --checkpoint-dir "$smoke_dir/rck" > "$smoke_dir/f3.txt"
grep -q "completed" "$smoke_dir/f3.txt"
grep -q "resumed_from: 2" "$smoke_dir/f3.txt"

# 10% scoring failures: every response still a valid ranked list.
python -m repro robust inject serve --epochs 1 --requests 50 \
    --fail-rate 0.1 > "$smoke_dir/f4.txt"
grep -q "all responses valid" "$smoke_dir/f4.txt"

# Corrupting one checkpoint byte must be detected, not silently loaded.
python -m repro robust inject checkpoint "$smoke_dir/rck" \
    > "$smoke_dir/f5.txt"
grep -q "corruption detected" "$smoke_dir/f5.txt"
echo "ok"

echo "== fast-backend smoke =="
# End-to-end CLI train on the fast backend must succeed...
python -m repro train BPRMF --dataset cd --epochs 2 --backend fast \
    > "$smoke_dir/b1.txt"
grep -q "recall" "$smoke_dir/b1.txt"
# ...and fast-vs-reference per-epoch losses must agree on a tiny config.
python - <<'EOF'
import numpy as np
from repro.data import SyntheticConfig, generate_dataset, temporal_split
from repro.models import HGCF, TrainConfig
from repro.tensor import use_backend

ds = generate_dataset(SyntheticConfig(n_users=40, n_items=60, depth=3,
                                      branching=3, mean_interactions=10.0,
                                      seed=4))
split = temporal_split(ds)
losses = {}
for backend in ("reference", "fast"):
    with use_backend(backend):
        model = HGCF(ds.n_users, ds.n_items,
                     TrainConfig(dim=8, epochs=2, batch_size=1024,
                                 lr=0.01, margin=0.5, n_negatives=1,
                                 seed=0))
        model.fit(ds, split)
        losses[backend] = np.asarray(model.loss_history)
np.testing.assert_allclose(losses["fast"], losses["reference"],
                           rtol=1e-4)
EOF
echo "ok"

echo "== observability smoke =="
python -m repro serve bench --dataset ciao --epochs 1 --requests 40 \
    --trace --profile --run-dir "$smoke_dir/obsruns" \
    > "$smoke_dir/o1.txt"
grep -q "PASS latency-p99" "$smoke_dir/o1.txt"
obs_run=$(ls -d "$smoke_dir"/obsruns/*/ | head -n 1)
test -s "$obs_run/events.jsonl"
test -s "$obs_run/profile.collapsed"
python -m repro obs export-trace "$obs_run"
python - "$obs_run/trace.json" <<'EOF'
import json, sys
from repro.obs.export import validate_chrome_trace
doc = json.load(open(sys.argv[1]))
errors = validate_chrome_trace(doc)
assert not errors, errors
assert len(doc["traceEvents"]) > 0
EOF
python -m repro obs slo "$obs_run"
python -m repro obs summarize "$obs_run" --json \
    | python -c "import json, sys; json.load(sys.stdin)"
python -m repro obs profile "$obs_run" --top 5 > "$smoke_dir/o2.txt"
grep -q "samples" "$smoke_dir/o2.txt"
echo "ok"

echo "== serving front-end smoke =="
# Reuses gate 4's exported index.  Start the HTTP edge with 2 workers,
# exercise every route, then SIGTERM: the contract is a graceful drain
# (exit 0) and no leaked shared-memory segments.
python -m repro serve http "$smoke_dir/index" --workers 2 \
    --port-file "$smoke_dir/port.txt" > "$smoke_dir/http.log" 2>&1 &
server_pid=$!
for _ in $(seq 1 300); do
    [ -s "$smoke_dir/port.txt" ] && break
    sleep 0.1
done
test -s "$smoke_dir/port.txt"
port=$(cat "$smoke_dir/port.txt")
curl -sf "http://127.0.0.1:$port/recommend?user=3&k=5" \
    > "$smoke_dir/h1.json"
grep -q '"items"' "$smoke_dir/h1.json"
curl -sf "http://127.0.0.1:$port/health" > /dev/null
python -m repro serve http --status --port "$port" > "$smoke_dir/h2.txt"
grep -q "2/2 worker(s) ready" "$smoke_dir/h2.txt"
grep -q "shard 1:" "$smoke_dir/h2.txt"
kill -TERM "$server_pid"
set +e
wait "$server_pid"
drain_status=$?
set -e
test "$drain_status" -eq 0
server_pid=""
grep -q "drained" "$smoke_dir/http.log"
if ls /dev/shm/repro_shm_* > /dev/null 2>&1; then
    echo "leaked shared-memory segments:"; ls /dev/shm/repro_shm_*
    exit 1
fi

# Worker-kill drill under open-loop load: every request answered
# (degraded fallbacks allowed, hard failures not), worker restarted.
python -m repro robust inject serve --frontend --kill-after 20 \
    --requests 150 --qps 300 --epochs 1 > "$smoke_dir/h3.txt"
grep -q "survived: every request answered, fleet recovered" \
    "$smoke_dir/h3.txt"
grep -q "hard_failures: 0" "$smoke_dir/h3.txt"
grep -q "worker_restarts: 1" "$smoke_dir/h3.txt"

# Traced front-end bench: queue-wait histogram recorded, SLO passes,
# and the cross-process request spans export as a valid Chrome trace.
python -m repro serve bench --dataset ciao --epochs 1 --requests 40 \
    --frontend-workers 2 --telemetry --run-dir "$smoke_dir/feruns" \
    > "$smoke_dir/h4.txt"
grep -q "frontend bench: 2 worker(s)" "$smoke_dir/h4.txt"
grep -q "kill drill:" "$smoke_dir/h4.txt"
grep -q "frontend slo: 3 objective(s), 0 violation(s)" \
    "$smoke_dir/h4.txt"
fe_run=$(ls -d "$smoke_dir"/feruns/*/ | head -n 1)
python -m repro obs slo "$fe_run"
python -m repro obs export-trace "$fe_run"
python - "$fe_run/trace.json" <<'EOF'
import json, sys
from repro.obs.export import validate_chrome_trace
doc = json.load(open(sys.argv[1]))
errors = validate_chrome_trace(doc)
assert not errors, errors
names = {event.get("name") for event in doc["traceEvents"]}
assert "serve/request" in names, sorted(names)[:20]
EOF
echo "ok"

echo "== online-learning smoke =="
# Full cycle: bootstrap, stream 30 events (2 cold users, 1 cold item),
# ingest, fine-tune the warm checkpoint, swap.  The contract: a new
# index version is live and the streamed-in users are servable from
# the index (cold-start hit rate 1.0), not a fallback.
python -m repro online run --workdir "$smoke_dir/online" \
    --events 30 --new-users 2 --new-items 1 \
    --bootstrap-epochs 2 --finetune-epochs 2 > "$smoke_dir/n1.txt"
grep -q "online run: v2 live" "$smoke_dir/n1.txt"
grep -q "cold-start hit rate 1.00" "$smoke_dir/n1.txt"
grep -q "n_appended: 30" "$smoke_dir/n1.txt"
test -d "$smoke_dir/online/index.v2"
grep -q "index.v2" "$smoke_dir/online/CURRENT"
# A second cycle on the same workdir must not re-bootstrap.
python -m repro online run --workdir "$smoke_dir/online" \
    --events 10 --new-users 0 --new-items 0 --finetune-epochs 1 \
    > "$smoke_dir/n2.txt"
grep -q "online run: v3 live" "$smoke_dir/n2.txt"
grep -q "bootstrapped: False" "$smoke_dir/n2.txt"
python -m repro online status --workdir "$smoke_dir/online" \
    > "$smoke_dir/n3.txt"
grep -q "current: 3" "$smoke_dir/n3.txt"
grep -q "lag_bytes: 0" "$smoke_dir/n3.txt"

# Scoring faults fired inside the swap window: the demoted v1 index
# must carry all traffic as the stale-index fallback (degraded mode),
# and the next clean swap must recover primary scoring.
python -m repro robust inject serve --swap --epochs 1 --requests 50 \
    --events 20 > "$smoke_dir/n4.txt" 2>&1
grep -q "degraded-mode serving held through the faulty swap" \
    "$smoke_dir/n4.txt"
grep -q "recovered: True" "$smoke_dir/n4.txt"
grep -q "phase2_stale: 50" "$smoke_dir/n4.txt"

# Poisoned event streams: typed rejection, zero dataset mutation.
for kind in journal_corrupt event_disorder event_duplicate; do
    python -m repro robust inject stream --kind "$kind" \
        > "$smoke_dir/n5.txt"
    grep -q "fault detected and contained" "$smoke_dir/n5.txt"
    grep -q "contained: True" "$smoke_dir/n5.txt"
done
echo "ok"

echo "== experiment DAG cache/resume =="
exp_dir="$smoke_dir/exp"
exp_flags="--kind comparison --models BPRMF CML --datasets ciao \
    --seeds 0 1 --epochs 2"
# First run executes every node over a 2-wide process pool...
python -m repro exp run $exp_flags --workdir "$exp_dir" --workers 2 \
    --no-tables > "$smoke_dir/x1.txt"
grep -q "cached (0%)" "$smoke_dir/x1.txt"
# ...and an identical rerun must skip all of them: 100% cache hits,
# zero retrains.
python -m repro exp run $exp_flags --workdir "$exp_dir" --no-tables \
    > "$smoke_dir/x2.txt"
grep -q "cached (100%)" "$smoke_dir/x2.txt"
grep -q "0 retrain(s)" "$smoke_dir/x2.txt"
# exp status exit-code contract: 0 complete / 1 partial / 2 nothing run.
python -m repro exp status $exp_flags --workdir "$exp_dir" > /dev/null
rc=0
python -m repro exp status --kind comparison --models BPRMF CML \
    --datasets ciao --seeds 0 1 2 --epochs 2 --workdir "$exp_dir" \
    > /dev/null || rc=$?
[ "$rc" -eq 1 ]
rc=0
python -m repro exp status $exp_flags --workdir "$smoke_dir/exp-empty" \
    > /dev/null || rc=$?
[ "$rc" -eq 2 ]
echo "ok"

echo "== all gates passed =="
