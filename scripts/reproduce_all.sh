#!/usr/bin/env bash
# Regenerate every artifact of the reproduction from scratch.
#
# Usage: bash scripts/reproduce_all.sh [--fast]
#   --fast  cut every training budget (smoke-run of the harness)
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--fast" ]]; then
    export REPRO_BENCH_FAST=1
    echo "[fast mode: reduced budgets]"
fi

echo "== tests =="
pytest tests/ 2>&1 | tee test_output.txt | tail -2

echo "== benchmarks (tables + figures) =="
pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt | tail -4

echo "== examples =="
python examples/quickstart.py
python examples/music_catalog.py
python examples/relation_mining.py
python examples/custom_data.py
python examples/compare_models.py ciao --fast

echo "Artifacts: benchmarks/output/*.txt, test_output.txt, bench_output.txt"
