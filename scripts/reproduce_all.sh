#!/usr/bin/env bash
# Regenerate every artifact of the reproduction from scratch.
#
# The paper grid — Table II comparison, Table III ablations, Table IV
# hyperparameter study, the Fig. 6 λ sweep, taxonomy-corruption
# robustness, and Table V case studies — is one spec now: a single
# `repro exp run --kind grid` compiles it to a DAG of cacheable nodes
# and executes the incomplete ones over a process pool.  Re-running
# this script resumes from exp_cache/ instead of starting over, and a
# killed run continues from its training auto-checkpoints
# (`repro exp resume` does the same without re-stating the spec).
#
# Usage: bash scripts/reproduce_all.sh [--fast] [extra `exp run` flags]
#   --fast  cut every training budget (smoke-run of the harness)
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src

grid_flags=()
if [[ "${1:-}" == "--fast" ]]; then
    shift
    export REPRO_BENCH_FAST=1
    grid_flags+=(--epochs 3)
    echo "[fast mode: reduced budgets]"
fi

echo "== tests =="
pytest tests/ 2>&1 | tee test_output.txt | tail -2

echo "== experiment grid (all tables + figures' numbers) =="
python -m repro exp run --kind grid --workdir exp_cache \
    --workers "$(nproc 2>/dev/null || echo 2)" \
    "${grid_flags[@]}" ${*:-} 2>&1 | tee grid_output.txt | tail -40

echo "== benchmarks (perf floors + figures) =="
pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt | tail -4

echo "== examples =="
python examples/quickstart.py
python examples/music_catalog.py
python examples/relation_mining.py
python examples/custom_data.py
python examples/compare_models.py ciao --fast

echo "Artifacts: grid_output.txt (+ exp_cache/ node results), \
benchmarks/output/*.txt, test_output.txt, bench_output.txt"
